// Package cluster models the hardware environment of the Chaos evaluation
// (§8): a rack of machines, each with cores, a storage device and a NIC,
// joined by a full-bisection-bandwidth switch. Devices and NICs are FIFO
// bandwidth/latency resources in a discrete-event simulation; the switch is
// never a bottleneck, matching the paper's assumption that network switch
// bandwidth exceeds the aggregate storage bandwidth.
package cluster

import (
	"fmt"

	"chaos/internal/sim"
)

// Spec describes the hardware of every machine in a (homogeneous) cluster.
type Spec struct {
	// Machines is the cluster size (1..32 in the paper).
	Machines int
	// Cores is the CPU core count per machine (16 in the paper).
	Cores int
	// StorageBytesPerSec is the per-device bandwidth (SSD 400 MB/s, HDD
	// RAID0 200 MB/s in the paper).
	StorageBytesPerSec float64
	// StorageLatency is the fixed per-request device overhead.
	StorageLatency sim.Time
	// NICBytesPerSec is the per-machine link bandwidth (40 GigE = 5 GB/s,
	// 1 GigE = 125 MB/s).
	NICBytesPerSec float64
	// NetHopLatency is the one-way small-message latency, covering
	// propagation plus the 0MQ/TCP stack. Chunk transfers additionally
	// pay their size through the NICs. The paper measured the full
	// chunk round trip at roughly the storage service time (phi = 2,
	// §10.1); our modeled stack is somewhat faster (phi ~ 1.1), which
	// shifts the Figure 16 window but not the batching story — see
	// EXPERIMENTS.md.
	NetHopLatency sim.Time
	// LoopbackLatency is the message latency between co-located engines
	// (0MQ in-process transport).
	LoopbackLatency sim.Time
	// PerCoreNetBytesPerSec caps NIC throughput by available cores:
	// "Chaos requires a minimum number of cores to maintain good network
	// throughput" (§9.4).
	PerCoreNetBytesPerSec float64
	// EdgesPerCorePerSec is the per-core graph-processing rate; CPU is
	// never the bottleneck at full core counts.
	EdgesPerCorePerSec float64
}

// Byte-bandwidth constants for the paper's hardware.
const (
	MB = 1e6
	GB = 1e9
)

// SSD returns the paper's default configuration: m machines, 16 cores,
// 480 GB-class SSD at 400 MB/s, 40 GigE.
func SSD(m int) Spec {
	return Spec{
		Machines:              m,
		Cores:                 16,
		StorageBytesPerSec:    400 * MB,
		StorageLatency:        100 * sim.Microsecond,
		NICBytesPerSec:        5 * GB,
		NetHopLatency:         50 * sim.Microsecond,
		LoopbackLatency:       10 * sim.Microsecond,
		PerCoreNetBytesPerSec: 500 * MB,
		EdgesPerCorePerSec:    10e6,
	}
}

// ScaleLatencies multiplies every fixed latency in spec by f. Laboratory
// runs shrink the 4 MB chunk by some factor; scaling the latencies by the
// same factor preserves the paper's latency-to-service-time ratios (and so
// phi, utilization and protocol overheads) at small scale.
func ScaleLatencies(s Spec, f float64) Spec {
	s.StorageLatency = sim.Time(float64(s.StorageLatency) * f)
	s.NetHopLatency = sim.Time(float64(s.NetHopLatency) * f)
	s.LoopbackLatency = sim.Time(float64(s.LoopbackLatency) * f)
	return s
}

// HDD returns the SSD spec with the magnetic-disk RAID0 storage of §8
// (about half the SSD bandwidth, higher seek latency).
func HDD(m int) Spec {
	s := SSD(m)
	s.StorageBytesPerSec = 200 * MB
	s.StorageLatency = 4 * sim.Millisecond
	return s
}

// GigE1 returns spec with the 1 GigE network of Figure 12, where the
// network throughput is about a quarter of the disk bandwidth and becomes
// the bottleneck.
func GigE1(s Spec) Spec {
	s.NICBytesPerSec = 125 * MB
	return s
}

// WithCores returns spec with p cores per machine (Figure 10).
func WithCores(s Spec, p int) Spec {
	s.Cores = p
	return s
}

// effNICBandwidth is the core-limited NIC throughput.
func (s Spec) effNICBandwidth() float64 {
	coreCap := float64(s.Cores) * s.PerCoreNetBytesPerSec
	if coreCap > 0 && coreCap < s.NICBytesPerSec {
		return coreCap
	}
	return s.NICBytesPerSec
}

// Machine is one simulated host: a storage device, NIC ingress/egress
// queues and a CPU complex.
type Machine struct {
	ID     int
	Device *sim.Resource
	NICIn  *sim.Resource
	NICOut *sim.Resource
	// CPU serves "operations" (edges or updates) rather than bytes.
	CPU *sim.Resource
	// Failed marks a machine killed by fault injection.
	Failed bool
}

// Cluster instantiates a Spec inside a simulation environment.
type Cluster struct {
	Env      *sim.Env
	Spec     Spec
	Machines []*Machine
}

// New builds the machines of spec inside env.
func New(env *sim.Env, spec Spec) *Cluster {
	if spec.Machines <= 0 {
		panic(fmt.Sprintf("cluster: invalid machine count %d", spec.Machines))
	}
	c := &Cluster{Env: env, Spec: spec}
	nic := spec.effNICBandwidth()
	for i := 0; i < spec.Machines; i++ {
		c.Machines = append(c.Machines, &Machine{
			ID:     i,
			Device: sim.NewResource(env, fmt.Sprintf("m%d.dev", i), spec.StorageBytesPerSec, spec.StorageLatency),
			NICIn:  sim.NewResource(env, fmt.Sprintf("m%d.nic-in", i), nic, 0),
			NICOut: sim.NewResource(env, fmt.Sprintf("m%d.nic-out", i), nic, 0),
			CPU:    sim.NewResource(env, fmt.Sprintf("m%d.cpu", i), float64(spec.Cores)*spec.EdgesPerCorePerSec, 0),
		})
	}
	return c
}

// N returns the machine count.
func (c *Cluster) N() int { return c.Spec.Machines }

// Send models a message of the given size from machine src to mailbox mb on
// machine dst: egress NIC, one hop of latency, ingress NIC, delivery. The
// sender does not block. Messages between co-located engines skip the NIC
// and arrive after a small loopback delay (§7 runs both engines in one
// process).
func (c *Cluster) Send(src, dst int, bytes int64, mb *sim.Mailbox, msg any) {
	if src == dst {
		mb.PutAfter(c.Spec.LoopbackLatency, msg)
		return
	}
	out := c.Machines[src].NICOut
	in := c.Machines[dst].NICIn
	egressDone := out.Schedule(bytes, nil)
	arriveAt := egressDone + c.Spec.NetHopLatency
	c.Env.At(arriveAt, func() {
		in.Schedule(bytes, func() { mb.Put(msg) })
	})
}

// RoundTripLatency estimates the network round trip for a chunk request:
// the request hop plus the reply hop carrying the chunk through the NIC.
func (c *Cluster) RoundTripLatency(chunkBytes int64) sim.Time {
	transfer := sim.Time(0)
	if bw := c.Spec.effNICBandwidth(); bw > 0 {
		transfer = sim.Time(float64(chunkBytes) / bw * float64(sim.Second))
	}
	return 2*c.Spec.NetHopLatency + transfer
}

// StorageRequestLatency estimates the storage engine's service time for a
// chunk of the given size.
func (c *Cluster) StorageRequestLatency(chunkBytes int64) sim.Time {
	return c.Machines[0].Device.ServiceTime(chunkBytes)
}

// Phi returns the window amplification factor of Equation 3 for the given
// chunk size: phi = 1 + Rnetwork/Rstorage.
func (c *Cluster) Phi(chunkBytes int64) float64 {
	rs := float64(c.StorageRequestLatency(chunkBytes))
	if rs == 0 {
		return 1
	}
	return 1 + float64(c.RoundTripLatency(chunkBytes))/rs
}

// AggregateStorageBandwidth returns the cluster-wide maximum storage
// bandwidth, the bottleneck resource Chaos aims to saturate.
func (c *Cluster) AggregateStorageBandwidth() float64 {
	return float64(c.N()) * c.Spec.StorageBytesPerSec
}

// DeviceUtilization returns the mean utilization of all storage devices.
func (c *Cluster) DeviceUtilization() float64 {
	var u float64
	for _, m := range c.Machines {
		u += m.Device.Utilization()
	}
	return u / float64(c.N())
}

// BytesMoved returns total bytes served by all storage devices.
func (c *Cluster) BytesMoved() int64 {
	var b int64
	for _, m := range c.Machines {
		b += m.Device.Bytes()
	}
	return b
}
