package metrics

import (
	"strings"
	"testing"

	"chaos/internal/sim"
)

func TestCategoriesCoverNames(t *testing.T) {
	cs := Categories()
	if len(cs) != 6 {
		t.Fatalf("got %d categories, want 6 (Figure 17)", len(cs))
	}
	want := []string{"gp,master==me", "gp,master!=me", "copy", "merge", "merge wait", "barrier"}
	for i, c := range cs {
		if c.String() != want[i] {
			t.Errorf("category %d = %q, want %q", i, c, want[i])
		}
	}
}

func TestMachineStatsAccumulate(t *testing.T) {
	var m MachineStats
	m.Add(Copy, 2*sim.Second)
	m.Add(Copy, 3*sim.Second)
	m.Add(Barrier, sim.Second)
	if m.Time[Copy] != 5*sim.Second {
		t.Errorf("copy = %v", m.Time[Copy])
	}
	if m.Total() != 6*sim.Second {
		t.Errorf("total = %v", m.Total())
	}
}

func TestRunFractions(t *testing.T) {
	r := NewRun("BFS", 2)
	r.Machines[0].Add(GPMasterMe, 3*sim.Second)
	r.Machines[1].Add(Barrier, sim.Second)
	if f := r.Fraction(GPMasterMe); f != 0.75 {
		t.Errorf("gp fraction = %f, want 0.75", f)
	}
	if f := r.Fraction(Barrier); f != 0.25 {
		t.Errorf("barrier fraction = %f, want 0.25", f)
	}
	if f := r.Fraction(Merge); f != 0 {
		t.Errorf("merge fraction = %f, want 0", f)
	}
}

func TestFractionEmptyRun(t *testing.T) {
	r := NewRun("x", 1)
	if r.Fraction(Copy) != 0 {
		t.Error("empty run should have zero fractions")
	}
	if r.AggregateBandwidth() != 0 {
		t.Error("empty run should have zero bandwidth")
	}
}

func TestAggregateBandwidth(t *testing.T) {
	r := NewRun("PR", 1)
	r.Runtime = 2 * sim.Second
	r.BytesRead = 300
	r.BytesWritten = 100
	if bw := r.AggregateBandwidth(); bw != 200 {
		t.Errorf("bandwidth = %f, want 200 B/s", bw)
	}
}

func TestRebalanceTimeIsWorstMachine(t *testing.T) {
	r := NewRun("BFS", 3)
	r.Machines[0].Add(Copy, sim.Second)
	r.Machines[1].Add(Copy, 2*sim.Second)
	r.Machines[1].Add(Merge, sim.Second)
	r.Machines[2].Add(MergeWait, sim.Second)
	if got := r.RebalanceTime(); got != 3*sim.Second {
		t.Errorf("rebalance = %v, want 3s (machine 1)", got)
	}
}

func TestBreakdownTableRendersAllCategories(t *testing.T) {
	r := NewRun("BFS", 1)
	r.Machines[0].Add(GPMasterMe, sim.Second)
	table := r.BreakdownTable()
	for _, c := range Categories() {
		if !strings.Contains(table, c.String()) {
			t.Errorf("table missing category %q:\n%s", c, table)
		}
	}
}

func TestRunString(t *testing.T) {
	r := NewRun("WCC", 1)
	r.Runtime = sim.Second
	r.Iterations = 7
	s := r.String()
	if !strings.Contains(s, "WCC") || !strings.Contains(s, "7 iters") {
		t.Errorf("summary %q missing fields", s)
	}
}
