// Package metrics collects the runtime accounting the Chaos evaluation
// reports: the per-machine breakdown of Figure 17 (graph processing on own
// vs stolen partitions, vertex-set copying, accumulator merging, merge
// wait, barrier wait), steal statistics, and aggregate I/O figures.
package metrics

import (
	"fmt"
	"strings"

	"chaos/internal/sim"
)

// Category labels one slice of a machine's runtime, matching Figure 17.
type Category int

// Breakdown categories.
const (
	// GPMasterMe is graph-processing time on partitions this machine
	// masters.
	GPMasterMe Category = iota
	// GPMasterOther is graph-processing time on stolen partitions.
	GPMasterOther
	// Copy is time spent loading vertex sets (the cost of stealing).
	Copy
	// Merge is time the master spends merging accumulators and applying.
	Merge
	// MergeWait is time waiting for accumulators to arrive (master) or to
	// be requested (stealer).
	MergeWait
	// Barrier is idle time at phase barriers.
	Barrier
	numCategories
)

var categoryNames = [...]string{
	"gp,master==me", "gp,master!=me", "copy", "merge", "merge wait", "barrier",
}

func (c Category) String() string { return categoryNames[c] }

// Categories lists all categories in display order.
func Categories() []Category {
	cs := make([]Category, numCategories)
	for i := range cs {
		cs[i] = Category(i)
	}
	return cs
}

// MachineStats accumulates one machine's accounting.
type MachineStats struct {
	Time [numCategories]sim.Time
}

// Add charges d to category c.
func (m *MachineStats) Add(c Category, d sim.Time) { m.Time[c] += d }

// Total returns the machine's accounted time.
func (m *MachineStats) Total() sim.Time {
	var t sim.Time
	for _, v := range m.Time {
		t += v
	}
	return t
}

// Run aggregates the statistics of one computation.
type Run struct {
	Algorithm  string
	Machines   []MachineStats
	Runtime    sim.Time
	Preprocess sim.Time
	Iterations int
	// BytesRead / BytesWritten are device-level totals.
	BytesRead, BytesWritten int64
	// StealsAccepted / StealsRejected count steal-proposal outcomes.
	StealsAccepted, StealsRejected int
	// DeviceUtilization is the mean storage-device utilization.
	DeviceUtilization float64
	// CheckpointBytes counts checkpoint I/O.
	CheckpointBytes int64
	// Recoveries counts restarts from checkpoint.
	Recoveries int
	// SpillBytes / SpillFiles count the native update transport's
	// out-of-core traffic: encoded bytes written past the memory budget
	// and spill files created. Always zero under the DES driver (its
	// storage engines are the spill).
	SpillBytes int64
	SpillFiles int
}

// NewRun creates statistics for a run across machines machines.
func NewRun(algorithm string, machines int) *Run {
	return &Run{Algorithm: algorithm, Machines: make([]MachineStats, machines)}
}

// AggregateBandwidth returns total device bytes moved per second of
// runtime, the quantity Figure 14 plots.
func (r *Run) AggregateBandwidth() float64 {
	if r.Runtime == 0 {
		return 0
	}
	return float64(r.BytesRead+r.BytesWritten) / r.Runtime.Seconds()
}

// Fraction returns the cluster-wide share of accounted time spent in
// category c (Figure 17 plots these fractions).
func (r *Run) Fraction(c Category) float64 {
	var total, cat sim.Time
	for i := range r.Machines {
		total += r.Machines[i].Total()
		cat += r.Machines[i].Time[c]
	}
	if total == 0 {
		return 0
	}
	return float64(cat) / float64(total)
}

// RebalanceTime returns the cluster-wide cost of dynamic load balancing —
// copy plus merge plus merge wait — the numerator of Figure 20. The
// worst-case (maximum) single-machine figure is used, as in the paper.
func (r *Run) RebalanceTime() sim.Time {
	var worst sim.Time
	for i := range r.Machines {
		m := &r.Machines[i]
		t := m.Time[Copy] + m.Time[Merge] + m.Time[MergeWait]
		if t > worst {
			worst = t
		}
	}
	return worst
}

// String formats a one-line summary.
func (r *Run) String() string {
	return fmt.Sprintf("%s: %v (%d iters, %.2f GB read, %.2f GB written, util %.1f%%)",
		r.Algorithm, r.Runtime, r.Iterations,
		float64(r.BytesRead)/1e9, float64(r.BytesWritten)/1e9, 100*r.DeviceUtilization)
}

// BreakdownTable renders the Figure 17-style fractions as a text table.
func (r *Run) BreakdownTable() string {
	var b strings.Builder
	for _, c := range Categories() {
		fmt.Fprintf(&b, "  %-14s %6.1f%%\n", c, 100*r.Fraction(c))
	}
	return b.String()
}
