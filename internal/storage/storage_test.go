package storage

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"testing/quick"
)

func backends(t *testing.T) map[string]Backend {
	t.Helper()
	fb, err := NewFileBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fb.Close() })
	return map[string]Backend{"mem": NewMemBackend(), "file": fb}
}

func TestBackendWriteReadRoundTrip(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			off1, err := b.Write("s", []byte("hello"))
			if err != nil {
				t.Fatal(err)
			}
			off2, err := b.Write("s", []byte("world"))
			if err != nil {
				t.Fatal(err)
			}
			if off1 != 0 || off2 != 5 {
				t.Errorf("offsets %d,%d want 0,5", off1, off2)
			}
			got, err := b.Read("s", 5, 5)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, []byte("world")) {
				t.Errorf("read %q, want world", got)
			}
			if sz, _ := b.Size("s"); sz != 10 {
				t.Errorf("size %d, want 10", sz)
			}
			if err := b.Truncate("s"); err != nil {
				t.Fatal(err)
			}
			if sz, _ := b.Size("s"); sz != 0 {
				t.Errorf("size after truncate %d, want 0", sz)
			}
		})
	}
}

func TestBackendStreamsAreIndependent(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			b.Write("a", []byte("aaa"))
			b.Write("b", []byte("bbb"))
			got, err := b.Read("a", 0, 3)
			if err != nil || !bytes.Equal(got, []byte("aaa")) {
				t.Errorf("stream a corrupted: %q %v", got, err)
			}
		})
	}
}

func TestMemBackendReadBeyondEnd(t *testing.T) {
	b := NewMemBackend()
	b.Write("s", []byte("abc"))
	if _, err := b.Read("s", 1, 5); err == nil {
		t.Error("read beyond end should error")
	}
	if _, err := b.Read("nope", 0, 1); err == nil {
		t.Error("unknown stream should error")
	}
}

func TestBackendUnknownStreamBehaviorAgrees(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := b.Read("nope", 0, 1); !errors.Is(err, ErrUnknownStream) {
				t.Errorf("Read: err = %v, want ErrUnknownStream", err)
			}
			if _, err := b.Size("nope"); !errors.Is(err, ErrUnknownStream) {
				t.Errorf("Size: err = %v, want ErrUnknownStream", err)
			}
			if err := b.Truncate("nope"); err != nil {
				t.Errorf("Truncate: %v, want nil no-op", err)
			}
			// None of the probes may have brought the stream into being.
			if _, err := b.Size("nope"); !errors.Is(err, ErrUnknownStream) {
				t.Errorf("Size after probes: err = %v, want ErrUnknownStream", err)
			}
			// A written-then-truncated stream stays known with size 0.
			b.Write("s", []byte("data"))
			if err := b.Truncate("s"); err != nil {
				t.Fatal(err)
			}
			sz, err := b.Size("s")
			if err != nil || sz != 0 {
				t.Errorf("Size after truncate = %d, %v; want 0, nil", sz, err)
			}
		})
	}
}

func TestFileBackendWriteErrorIsNotUnknownStream(t *testing.T) {
	dir := t.TempDir()
	b, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// With the base directory gone, a Write fails with a real I/O error;
	// it must not masquerade as the read-only "unknown stream" condition.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	_, err = b.Write("s", []byte("x"))
	if err == nil {
		t.Fatal("write into a removed directory should fail")
	}
	if errors.Is(err, ErrUnknownStream) {
		t.Errorf("write error %v wrongly reports ErrUnknownStream", err)
	}
}

func TestFileBackendReadPathCreatesNoFiles(t *testing.T) {
	dir := t.TempDir()
	b, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Read("ghost", 0, 1)
	b.Size("ghost")
	b.Truncate("ghost")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("read-only probes left %d files behind", len(entries))
	}
}

func chunk(i int) []byte { return []byte(fmt.Sprintf("chunk-%03d", i)) }

func TestNextChunkServesEachExactlyOnce(t *testing.T) {
	s := NewStore(0, 2, NewMemBackend())
	for i := 0; i < 10; i++ {
		if err := s.PutChunk(EdgeSet, 1, chunk(i)); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[string]bool{}
	for {
		data, ok, err := s.NextChunk(EdgeSet, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if seen[string(data)] {
			t.Fatalf("chunk %q served twice", data)
		}
		seen[string(data)] = true
	}
	if len(seen) != 10 {
		t.Errorf("served %d distinct chunks, want 10", len(seen))
	}
	// A second pass without reset serves nothing.
	if _, ok, _ := s.NextChunk(EdgeSet, 1); ok {
		t.Error("chunk served after exhaustion without reset")
	}
}

func TestResetConsumptionRewinds(t *testing.T) {
	s := NewStore(0, 1, NewMemBackend())
	s.PutChunk(EdgeSet, 0, chunk(1))
	s.NextChunk(EdgeSet, 0)
	s.ResetConsumption(EdgeSet, 0)
	if _, ok, _ := s.NextChunk(EdgeSet, 0); !ok {
		t.Error("chunk not served again after reset")
	}
}

func TestRemainingBytes(t *testing.T) {
	s := NewStore(0, 1, NewMemBackend())
	s.PutChunk(UpdateSet, 0, make([]byte, 100))
	s.PutChunk(UpdateSet, 0, make([]byte, 50))
	if got := s.RemainingBytes(UpdateSet, 0); got != 150 {
		t.Errorf("remaining %d, want 150", got)
	}
	s.NextChunk(UpdateSet, 0)
	if got := s.RemainingBytes(UpdateSet, 0); got != 50 {
		t.Errorf("remaining after one consume %d, want 50", got)
	}
	if got := s.TotalBytes(UpdateSet, 0); got != 150 {
		t.Errorf("total %d, want 150", got)
	}
}

func TestDeleteUpdatesClears(t *testing.T) {
	s := NewStore(0, 1, NewMemBackend())
	s.PutChunk(UpdateSet, 0, chunk(1))
	if err := s.DeleteUpdates(0); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.NextChunk(UpdateSet, 0); ok {
		t.Error("update chunk survived deletion")
	}
	if s.ChunkCount(UpdateSet, 0) != 0 || s.TotalBytes(UpdateSet, 0) != 0 {
		t.Error("counters not cleared")
	}
	// Writing after delete works.
	if err := s.PutChunk(UpdateSet, 0, chunk(2)); err != nil {
		t.Fatal(err)
	}
	data, ok, _ := s.NextChunk(UpdateSet, 0)
	if !ok || !bytes.Equal(data, chunk(2)) {
		t.Errorf("after delete+put: got %q ok=%v", data, ok)
	}
}

func TestVertexChunksArePositional(t *testing.T) {
	s := NewStore(0, 1, NewMemBackend())
	s.PutVertexChunk(0, 3, []byte("v3"))
	s.PutVertexChunk(0, 1, []byte("v1"))
	got, err := s.GetVertexChunk(0, 3)
	if err != nil || !bytes.Equal(got, []byte("v3")) {
		t.Errorf("chunk 3: %q %v", got, err)
	}
	// Overwrite repoints.
	s.PutVertexChunk(0, 3, []byte("v3b"))
	got, _ = s.GetVertexChunk(0, 3)
	if !bytes.Equal(got, []byte("v3b")) {
		t.Errorf("chunk 3 after overwrite: %q", got)
	}
	if !s.HasVertexChunk(0, 1) || s.HasVertexChunk(0, 9) {
		t.Error("HasVertexChunk wrong")
	}
	if _, err := s.GetVertexChunk(0, 9); err == nil {
		t.Error("missing vertex chunk should error")
	}
}

func TestVertexChunkHomeDeterministicAndUniform(t *testing.T) {
	const machines = 8
	counts := make([]int, machines)
	for p := 0; p < 64; p++ {
		for c := 0; c < 64; c++ {
			h := VertexChunkHome(p, c, machines)
			if h != VertexChunkHome(p, c, machines) {
				t.Fatal("placement not deterministic")
			}
			if h < 0 || h >= machines {
				t.Fatalf("home %d out of range", h)
			}
			counts[h]++
		}
	}
	// 4096 placements over 8 machines: expect 512 each; allow ±25%.
	for m, c := range counts {
		if c < 384 || c > 640 {
			t.Errorf("machine %d got %d placements, want 512 +- 128", m, c)
		}
	}
}

func TestStoreKindsAreIndependent(t *testing.T) {
	s := NewStore(0, 2, NewMemBackend())
	s.PutChunk(EdgeSet, 0, chunk(1))
	s.PutChunk(UpdateSet, 0, chunk(2))
	s.PutChunk(EdgeSet, 1, chunk(3))
	e0, _, _ := s.NextChunk(EdgeSet, 0)
	u0, _, _ := s.NextChunk(UpdateSet, 0)
	e1, _, _ := s.NextChunk(EdgeSet, 1)
	if !bytes.Equal(e0, chunk(1)) || !bytes.Equal(u0, chunk(2)) || !bytes.Equal(e1, chunk(3)) {
		t.Error("sets interfered with each other")
	}
}

func TestExactlyOnceProperty(t *testing.T) {
	// Property: any interleaving of NextChunk calls across "stealers"
	// (multiple consumers of the same store) serves each chunk at most
	// once and collectively exactly once.
	prop := func(nChunks uint8, seed int64) bool {
		n := int(nChunks%32) + 1
		s := NewStore(0, 1, NewMemBackend())
		for i := 0; i < n; i++ {
			s.PutChunk(EdgeSet, 0, chunk(i))
		}
		rng := rand.New(rand.NewSource(seed))
		served := 0
		for consumers := 0; consumers < 3; consumers++ {
			for rng.Intn(4) != 0 { // each consumer grabs a random run
				_, ok, err := s.NextChunk(EdgeSet, 0)
				if err != nil {
					return false
				}
				if !ok {
					break
				}
				served++
			}
		}
		// Drain the rest.
		for {
			_, ok, _ := s.NextChunk(EdgeSet, 0)
			if !ok {
				break
			}
			served++
		}
		return served == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDirectoryPlacementBalances(t *testing.T) {
	d := NewDirectory(4, rand.New(rand.NewSource(1)))
	counts := make([]int, 4)
	for i := 0; i < 400; i++ {
		counts[d.Place(EdgeSet, 0)]++
	}
	for m, c := range counts {
		if c != 100 {
			t.Errorf("machine %d placed %d chunks, want exactly 100 (least-loaded)", m, c)
		}
	}
}

func TestDirectoryLocateConsumesExactlyOnce(t *testing.T) {
	d := NewDirectory(3, rand.New(rand.NewSource(2)))
	for i := 0; i < 10; i++ {
		d.Place(UpdateSet, 1)
	}
	found := 0
	for {
		_, ok := d.Locate(UpdateSet, 1)
		if !ok {
			break
		}
		found++
	}
	if found != 10 {
		t.Errorf("located %d chunks, want 10", found)
	}
	d.Reset(UpdateSet, 1)
	if d.Remaining(UpdateSet, 1) != 10 {
		t.Errorf("after reset remaining = %d, want 10", d.Remaining(UpdateSet, 1))
	}
	d.Delete(UpdateSet, 1)
	if d.Remaining(UpdateSet, 1) != 0 {
		t.Error("delete did not clear directory")
	}
}

func TestFileBackendPersistsAcrossHandles(t *testing.T) {
	dir := t.TempDir()
	b1, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	b1.Write("s", []byte("persist"))
	b1.Close()
	b2, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	got, err := b2.Read("s", 0, 7)
	if err != nil || !bytes.Equal(got, []byte("persist")) {
		t.Errorf("got %q %v, want persist", got, err)
	}
}
