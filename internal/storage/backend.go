// Package storage implements the Chaos storage engine (§6): per-partition
// vertex, edge and update sets maintained as chunks, spread uniformly
// randomly across the storage engines of the cluster, and served with
// per-iteration exactly-once consumption tracking.
//
// The Store type holds one machine's share of the graph data. It is pure
// data-plane: request timing (device bandwidth, network hops) is modeled by
// the cluster layer, which charges the simulated device before touching the
// store. The same Store runs over an in-memory backend (used by benches)
// or a file backend (one file per set per partition, as in §7).
package storage

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// ErrUnknownStream is returned (wrapped) by read-only backend operations
// on a stream that was never written. All backends agree on it, so callers
// can distinguish "no such set yet" from I/O failures with errors.Is.
var ErrUnknownStream = errors.New("storage: unknown stream")

// Backend is the byte-level persistence layer under a Store. Streams are
// named append-only byte sequences, one per (set, partition) pair, matching
// the paper's file-per-set layout on ext4.
type Backend interface {
	// Write appends data to the named stream and returns the offset at
	// which it was stored.
	Write(stream string, data []byte) (int64, error)
	// Read returns length bytes at offset from the named stream.
	Read(stream string, offset int64, length int) ([]byte, error)
	// Truncate discards the named stream's contents.
	Truncate(stream string) error
	// Size returns the current length of the named stream.
	Size(stream string) (int64, error)
	// Close releases all resources.
	Close() error
}

// MemBackend keeps streams in memory. It is the default for simulations:
// the simulated device already accounts for I/O time, so the bytes only
// need to be held somewhere.
type MemBackend struct {
	mu      sync.Mutex
	streams map[string][]byte
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend {
	return &MemBackend{streams: make(map[string][]byte)}
}

// Write appends data to the stream.
func (b *MemBackend) Write(stream string, data []byte) (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	off := int64(len(b.streams[stream]))
	b.streams[stream] = append(b.streams[stream], data...)
	return off, nil
}

// Read returns a copy of the requested byte range.
func (b *MemBackend) Read(stream string, offset int64, length int) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s, ok := b.streams[stream]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownStream, stream)
	}
	if offset+int64(length) > int64(len(s)) {
		return nil, fmt.Errorf("storage: read [%d,%d) beyond stream %q of %d bytes", offset, offset+int64(length), stream, len(s))
	}
	out := make([]byte, length)
	copy(out, s[offset:])
	return out, nil
}

// Truncate discards the stream's contents. The stream stays registered
// (empty), mirroring a file truncated to zero length; truncating a stream
// that was never written is a no-op.
func (b *MemBackend) Truncate(stream string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.streams[stream]; ok {
		b.streams[stream] = nil
	}
	return nil
}

// Size returns the stream length, or an ErrUnknownStream error for a
// stream that was never written.
func (b *MemBackend) Size(stream string) (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s, ok := b.streams[stream]
	if !ok {
		return 0, fmt.Errorf("%w %q", ErrUnknownStream, stream)
	}
	return int64(len(s)), nil
}

// Close releases the stream map.
func (b *MemBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.streams = make(map[string][]byte)
	return nil
}

// Streams returns the stream names currently present, sorted; used by
// tests and diagnostics.
func (b *MemBackend) Streams() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	names := make([]string, 0, len(b.streams))
	for n := range b.streams {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FileBackend stores each stream as a file under a directory, the layout
// §7 describes (one file per vertex/edge/update set per partition).
type FileBackend struct {
	dir   string
	mu    sync.Mutex
	files map[string]*os.File
}

// NewFileBackend creates (if needed) dir and returns a backend rooted there.
func NewFileBackend(dir string) (*FileBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	return &FileBackend{dir: dir, files: make(map[string]*os.File)}, nil
}

// file returns the open handle for stream. Only Write may create the
// backing file; read-only operations on a stream that was never written
// report ErrUnknownStream instead of leaving an empty file behind.
func (b *FileBackend) file(stream string, create bool) (*os.File, error) {
	if f, ok := b.files[stream]; ok {
		return f, nil
	}
	flags := os.O_RDWR
	if create {
		flags |= os.O_CREATE
	}
	f, err := os.OpenFile(filepath.Join(b.dir, stream), flags, 0o644)
	if !create && errors.Is(err, fs.ErrNotExist) {
		// On the create path ErrNotExist means real trouble (the base
		// directory vanished), not an unknown stream.
		return nil, fmt.Errorf("%w %q", ErrUnknownStream, stream)
	}
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	b.files[stream] = f
	return f, nil
}

// Write appends data to the stream's file, creating it on first write.
func (b *FileBackend) Write(stream string, data []byte) (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	f, err := b.file(stream, true)
	if err != nil {
		return 0, err
	}
	off, err := f.Seek(0, 2)
	if err != nil {
		return 0, fmt.Errorf("storage: %w", err)
	}
	if _, err := f.WriteAt(data, off); err != nil {
		return 0, fmt.Errorf("storage: %w", err)
	}
	return off, nil
}

// Read returns length bytes at offset, or an ErrUnknownStream error for a
// stream that was never written.
func (b *FileBackend) Read(stream string, offset int64, length int) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	f, err := b.file(stream, false)
	if err != nil {
		return nil, err
	}
	out := make([]byte, length)
	if _, err := f.ReadAt(out, offset); err != nil {
		return nil, fmt.Errorf("storage: read %q@%d: %w", stream, offset, err)
	}
	return out, nil
}

// Truncate empties the stream's file. Like MemBackend, truncating a
// stream that was never written is a no-op and does not create a file.
func (b *FileBackend) Truncate(stream string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	f, err := b.file(stream, false)
	if errors.Is(err, ErrUnknownStream) {
		return nil
	}
	if err != nil {
		return err
	}
	if err := f.Truncate(0); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}

// Size returns the stream file's length, or an ErrUnknownStream error for
// a stream that was never written.
func (b *FileBackend) Size(stream string) (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	f, err := b.file(stream, false)
	if err != nil {
		return 0, err
	}
	st, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("storage: %w", err)
	}
	return st.Size(), nil
}

// Close closes every open file.
func (b *FileBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	var first error
	for _, f := range b.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	b.files = make(map[string]*os.File)
	return first
}
