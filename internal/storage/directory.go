package storage

import "math/rand"

// Directory is the centralized chunk-location service used by the Figure 15
// baseline. Chaos itself deliberately has no such component — computation
// engines pick storage engines uniformly at random — but the paper
// evaluates a design where "all read and writes go through the centralized
// entity, which maintains a directory of where each chunk of each vertex,
// edge or update set is located", and shows it becoming a bottleneck.
//
// The Directory is pure bookkeeping; the simulation layer routes every
// request through a single directory process whose service time provides
// the serialization the experiment measures.
type Directory struct {
	machines int
	rng      *rand.Rand
	total    map[dirKey][]int // chunks stored per machine
	consumed map[dirKey][]int // chunks consumed this iteration per machine
}

type dirKey struct {
	kind SetKind
	part int
}

// NewDirectory creates a directory for a cluster of the given size, drawing
// placement decisions from rng.
func NewDirectory(machines int, rng *rand.Rand) *Directory {
	return &Directory{
		machines: machines,
		rng:      rng,
		total:    make(map[dirKey][]int),
		consumed: make(map[dirKey][]int),
	}
}

func (d *Directory) slot(kind SetKind, part int) ([]int, []int) {
	k := dirKey{kind, part}
	if d.total[k] == nil {
		d.total[k] = make([]int, d.machines)
		d.consumed[k] = make([]int, d.machines)
	}
	return d.total[k], d.consumed[k]
}

// Place records a new chunk of (kind, part) and returns the machine chosen
// to store it (least-loaded, breaking ties randomly — a directory can
// afford smarter placement than random; the bottleneck is the directory
// itself).
func (d *Directory) Place(kind SetKind, part int) int {
	total, _ := d.slot(kind, part)
	best := -1
	for m := 0; m < d.machines; m++ {
		if best == -1 || total[m] < total[best] || (total[m] == total[best] && d.rng.Intn(2) == 0) {
			best = m
		}
	}
	total[best]++
	return best
}

// Locate returns a machine that still holds an unconsumed chunk of
// (kind, part), marking one consumed; ok is false when the set is fully
// consumed this iteration.
func (d *Directory) Locate(kind SetKind, part int) (machine int, ok bool) {
	total, consumed := d.slot(kind, part)
	// Scan from a random start so consumption is spread.
	start := d.rng.Intn(d.machines)
	for i := 0; i < d.machines; i++ {
		m := (start + i) % d.machines
		if consumed[m] < total[m] {
			consumed[m]++
			return m, true
		}
	}
	return 0, false
}

// Reset rewinds consumption for (kind, part) at the end of an iteration.
func (d *Directory) Reset(kind SetKind, part int) {
	_, consumed := d.slot(kind, part)
	for m := range consumed {
		consumed[m] = 0
	}
}

// Delete forgets all chunks of (kind, part) (update sets after gather).
func (d *Directory) Delete(kind SetKind, part int) {
	k := dirKey{kind, part}
	delete(d.total, k)
	delete(d.consumed, k)
}

// Remaining returns the total unconsumed chunks of (kind, part).
func (d *Directory) Remaining(kind SetKind, part int) int {
	total, consumed := d.slot(kind, part)
	rem := 0
	for m := range total {
		rem += total[m] - consumed[m]
	}
	return rem
}
