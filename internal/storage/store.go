package storage

import (
	"fmt"
)

// SetKind names the stored data structures of a partition (§6.1).
type SetKind int

// The stored set kinds. EdgeSetNext holds rewritten edge chunks produced
// during a scatter phase under the extended model of §6.1 ("edges may also
// be rewritten during the computation"); PromoteEdges swaps it in at the
// iteration boundary.
const (
	EdgeSet SetKind = iota
	UpdateSet
	VertexSet
	EdgeSetNext
)

func (k SetKind) String() string {
	switch k {
	case EdgeSet:
		return "edges"
	case UpdateSet:
		return "updates"
	case VertexSet:
		return "vertices"
	case EdgeSetNext:
		return "edges-next"
	default:
		return fmt.Sprintf("SetKind(%d)", int(k))
	}
}

// chunkRef locates one stored chunk inside a stream.
type chunkRef struct {
	offset int64
	length int
}

// chunkSet is the per-(kind, partition) collection of chunks on one
// storage engine, with the iteration-scoped consumption cursor §6.3
// requires: a storage engine keeps track of which chunks have already been
// consumed during the current iteration and serves any unconsumed chunk.
// Each set owns its backend stream, so edge generations can be promoted by
// swapping sets.
type chunkSet struct {
	stream   string
	chunks   []chunkRef
	consumed int
	bytes    int64
}

// Store is one machine's storage engine state. Methods are not safe for
// concurrent use; in the simulation all calls are serialized by the DES
// scheduler, mirroring the single storage-engine thread of §7.
type Store struct {
	machine   int
	nparts    int
	backend   Backend
	edges     []*chunkSet
	updates   []*chunkSet
	edgesNext []*chunkSet
	edgeGen   []int // next edge generation number per partition
	// vertexChunks maps chunk index -> ref for each partition; vertex
	// chunks are addressed positionally (§6.4), not consumed.
	vertexChunks []map[int]chunkRef
}

// NewStore creates the storage engine for one machine covering nparts
// streaming partitions.
func NewStore(machine, nparts int, backend Backend) *Store {
	s := &Store{
		machine:      machine,
		nparts:       nparts,
		backend:      backend,
		edges:        make([]*chunkSet, nparts),
		updates:      make([]*chunkSet, nparts),
		edgesNext:    make([]*chunkSet, nparts),
		edgeGen:      make([]int, nparts),
		vertexChunks: make([]map[int]chunkRef, nparts),
	}
	for p := 0; p < nparts; p++ {
		s.edges[p] = &chunkSet{stream: fmt.Sprintf("edges.g0.p%d", p)}
		s.edgesNext[p] = &chunkSet{stream: fmt.Sprintf("edges.g1.p%d", p)}
		s.edgeGen[p] = 1
		s.updates[p] = &chunkSet{stream: fmt.Sprintf("updates.p%d", p)}
		s.vertexChunks[p] = make(map[int]chunkRef)
	}
	return s
}

// Machine returns the machine index this store belongs to.
func (s *Store) Machine() int { return s.machine }

func (s *Store) set(kind SetKind, part int) *chunkSet {
	if part < 0 || part >= s.nparts {
		panic(fmt.Sprintf("storage: partition %d out of range [0,%d)", part, s.nparts))
	}
	switch kind {
	case EdgeSet:
		return s.edges[part]
	case UpdateSet:
		return s.updates[part]
	case EdgeSetNext:
		return s.edgesNext[part]
	default:
		panic("storage: " + kind.String() + " is not chunk-consumed; use vertex accessors")
	}
}

// PutChunk appends a chunk of edges or updates for a partition.
func (s *Store) PutChunk(kind SetKind, part int, data []byte) error {
	cs := s.set(kind, part)
	off, err := s.backend.Write(cs.stream, data)
	if err != nil {
		return err
	}
	cs.chunks = append(cs.chunks, chunkRef{offset: off, length: len(data)})
	cs.bytes += int64(len(data))
	return nil
}

// NextChunk returns any not-yet-consumed chunk of the given set and marks
// it consumed, or ok=false when every local chunk has been served this
// iteration (the storage engine then tells the requester it has nothing
// left, §6.3). It composes ConsumeChunk and ReadChunkAt, the primitives
// the engine uses directly to avoid re-reading pre-read chunks.
func (s *Store) NextChunk(kind SetKind, part int) (data []byte, ok bool, err error) {
	idx, _, ok := s.ConsumeChunk(kind, part)
	if !ok {
		return nil, false, nil
	}
	data, err = s.ReadChunkAt(kind, part, idx)
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// ConsumeChunk advances the consumption cursor of the given set without
// reading the data, returning the consumed chunk's cursor index and byte
// length. Callers that already hold the chunk's bytes (the engine's
// pre-dispatched compute tasks) use it to skip the backend read;
// ReadChunkAt recovers the data for a given index when needed.
func (s *Store) ConsumeChunk(kind SetKind, part int) (idx, length int, ok bool) {
	cs := s.set(kind, part)
	if cs.consumed >= len(cs.chunks) {
		return 0, 0, false
	}
	idx = cs.consumed
	cs.consumed++
	return idx, cs.chunks[idx].length, true
}

// ReadChunkAt returns the data of chunk idx of the given set, regardless
// of consumption state.
func (s *Store) ReadChunkAt(kind SetKind, part, idx int) ([]byte, error) {
	cs := s.set(kind, part)
	if idx < 0 || idx >= len(cs.chunks) {
		return nil, fmt.Errorf("storage: machine %d has no chunk %d of %v partition %d", s.machine, idx, kind, part)
	}
	ref := cs.chunks[idx]
	return s.backend.Read(cs.stream, ref.offset, ref.length)
}

// UnconsumedChunkData reads every not-yet-consumed chunk of the given set
// in cursor order without consuming anything, returning the chunk payloads
// and the cursor index of the first one. The engine uses it to pre-read a
// stream's chunks for its compute workers; consumption (and its device
// charge) still happens request by request through ConsumeChunk.
func (s *Store) UnconsumedChunkData(kind SetKind, part int) (data [][]byte, base int, err error) {
	cs := s.set(kind, part)
	base = cs.consumed
	for _, ref := range cs.chunks[base:] {
		d, err := s.backend.Read(cs.stream, ref.offset, ref.length)
		if err != nil {
			return nil, base, err
		}
		data = append(data, d)
	}
	return data, base, nil
}

// ResetConsumption rewinds the consumption cursor of a set, the equivalent
// of resetting the file pointer at the end of an iteration (§7).
func (s *Store) ResetConsumption(kind SetKind, part int) {
	s.set(kind, part).consumed = 0
}

// RemainingBytes returns the bytes of unconsumed chunks for a set; masters
// multiply the local figure by the machine count to estimate D for the
// steal criterion (§5.4).
func (s *Store) RemainingBytes(kind SetKind, part int) int64 {
	cs := s.set(kind, part)
	var rem int64
	for _, ref := range cs.chunks[cs.consumed:] {
		rem += int64(ref.length)
	}
	return rem
}

// TotalBytes returns the stored bytes of a set.
func (s *Store) TotalBytes(kind SetKind, part int) int64 {
	return s.set(kind, part).bytes
}

// ChunkCount returns the number of stored chunks of a set.
func (s *Store) ChunkCount(kind SetKind, part int) int {
	return len(s.set(kind, part).chunks)
}

// DeleteUpdates discards a partition's update set after its gather phase
// completes (§6.1: update sets are deleted after the gather).
func (s *Store) DeleteUpdates(part int) error {
	cs := s.updates[part]
	cs.chunks = cs.chunks[:0]
	cs.consumed = 0
	cs.bytes = 0
	return s.backend.Truncate(cs.stream)
}

// PromoteEdges replaces a partition's edge set with the rewritten
// next-generation set (§6.1 extended model): the old chunks are discarded
// and a fresh next-generation set begins.
func (s *Store) PromoteEdges(part int) error {
	old := s.edges[part]
	s.edges[part] = s.edgesNext[part]
	s.edges[part].consumed = 0
	s.edgeGen[part]++
	s.edgesNext[part] = &chunkSet{stream: fmt.Sprintf("edges.g%d.p%d", s.edgeGen[part], part)}
	return s.backend.Truncate(old.stream)
}

// PutVertexChunk stores (or overwrites) vertex chunk idx of a partition.
// Vertex chunks are fixed-position: masters rewrite them after apply.
func (s *Store) PutVertexChunk(part, idx int, data []byte) error {
	// Overwriting rewrites the chunk at a fresh offset and repoints the
	// index, which keeps the backend append-only (simplest correct model
	// of a rewritten file region).
	off, err := s.backend.Write(fmt.Sprintf("vertices.p%d", part), data)
	if err != nil {
		return err
	}
	s.vertexChunks[part][idx] = chunkRef{offset: off, length: len(data)}
	return nil
}

// GetVertexChunk returns vertex chunk idx of a partition.
func (s *Store) GetVertexChunk(part, idx int) ([]byte, error) {
	ref, ok := s.vertexChunks[part][idx]
	if !ok {
		return nil, fmt.Errorf("storage: machine %d has no vertex chunk %d of partition %d", s.machine, idx, part)
	}
	return s.backend.Read(fmt.Sprintf("vertices.p%d", part), ref.offset, ref.length)
}

// HasVertexChunk reports whether vertex chunk idx of a partition is stored
// here.
func (s *Store) HasVertexChunk(part, idx int) bool {
	_, ok := s.vertexChunks[part][idx]
	return ok
}

// DropVertexChunk forgets vertex chunk idx of a partition (used by the
// storage-failure tests exercising vertex-set replication, §6.6).
func (s *Store) DropVertexChunk(part, idx int) {
	delete(s.vertexChunks[part], idx)
}

// VertexChunkHome returns the storage engine that hosts vertex chunk idx of
// partition part, "the equivalent of hashing on the partition identifier
// and the chunk number" (§6.4). It is a pure function so any machine can
// locate vertex chunks without a directory.
func VertexChunkHome(part, idx, machines int) int {
	h := uint64(part)*0x9E3779B97F4A7C15 + uint64(idx)*0xBF58476D1CE4E5B9
	h ^= h >> 31
	h *= 0x94D049BB133111EB
	h ^= h >> 29
	return int(h % uint64(machines))
}

// VertexChunkReplica returns the storage engine holding the replica of a
// vertex chunk when vertex-set replication is enabled (§6.6: recovery from
// storage failures "could easily be added by replicating the vertex
// sets"). The replica always lives on a different machine when the cluster
// has more than one.
func VertexChunkReplica(part, idx, machines int) int {
	if machines == 1 {
		return 0
	}
	home := VertexChunkHome(part, idx, machines)
	h := uint64(part)*0xD6E8FEB86659FD93 + uint64(idx)*0xA3B195354A39B70D + 1
	h ^= h >> 33
	r := int(h % uint64(machines-1))
	if r >= home {
		r++
	}
	return r
}
