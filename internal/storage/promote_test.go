package storage

import (
	"bytes"
	"testing"
)

func TestPromoteEdgesSwapsGenerations(t *testing.T) {
	s := NewStore(0, 1, NewMemBackend())
	s.PutChunk(EdgeSet, 0, []byte("old-1"))
	s.PutChunk(EdgeSet, 0, []byte("old-2"))
	s.PutChunk(EdgeSetNext, 0, []byte("new-1"))
	if err := s.PromoteEdges(0); err != nil {
		t.Fatal(err)
	}
	data, ok, err := s.NextChunk(EdgeSet, 0)
	if err != nil || !ok || !bytes.Equal(data, []byte("new-1")) {
		t.Fatalf("after promote: %q ok=%v err=%v, want new-1", data, ok, err)
	}
	if _, ok, _ := s.NextChunk(EdgeSet, 0); ok {
		t.Error("old edges survived promotion")
	}
	// The next-generation set is fresh again.
	if s.ChunkCount(EdgeSetNext, 0) != 0 {
		t.Error("next-generation set not reset")
	}
}

func TestPromoteEdgesRepeatedGenerations(t *testing.T) {
	s := NewStore(0, 1, NewMemBackend())
	s.PutChunk(EdgeSet, 0, []byte("g0"))
	for gen := 1; gen <= 5; gen++ {
		payload := []byte{byte('0' + gen)}
		s.PutChunk(EdgeSetNext, 0, payload)
		if err := s.PromoteEdges(0); err != nil {
			t.Fatal(err)
		}
		data, ok, _ := s.NextChunk(EdgeSet, 0)
		if !ok || !bytes.Equal(data, payload) {
			t.Fatalf("generation %d: got %q ok=%v", gen, data, ok)
		}
		if _, ok, _ := s.NextChunk(EdgeSet, 0); ok {
			t.Fatalf("generation %d: stale chunks", gen)
		}
	}
}

func TestPromoteEdgesResetsConsumption(t *testing.T) {
	s := NewStore(0, 1, NewMemBackend())
	s.PutChunk(EdgeSetNext, 0, []byte("a"))
	s.PutChunk(EdgeSetNext, 0, []byte("b"))
	// Consume the next-gen set before promotion (should not happen in the
	// engine, but the cursor must still reset).
	s.NextChunk(EdgeSetNext, 0)
	if err := s.PromoteEdges(0); err != nil {
		t.Fatal(err)
	}
	served := 0
	for {
		_, ok, _ := s.NextChunk(EdgeSet, 0)
		if !ok {
			break
		}
		served++
	}
	if served != 2 {
		t.Errorf("served %d chunks after promote, want 2", served)
	}
}

func TestDropVertexChunk(t *testing.T) {
	s := NewStore(0, 1, NewMemBackend())
	s.PutVertexChunk(0, 3, []byte("v"))
	s.DropVertexChunk(0, 3)
	if s.HasVertexChunk(0, 3) {
		t.Error("chunk survived drop")
	}
	if _, err := s.GetVertexChunk(0, 3); err == nil {
		t.Error("dropped chunk still readable")
	}
}
