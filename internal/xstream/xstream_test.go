package xstream

import (
	"math"
	"testing"

	"chaos/internal/algorithms"
	"chaos/internal/cluster"
	"chaos/internal/graph"
	"chaos/internal/refalgo"
	"chaos/internal/rmat"
)

func TestBFSCorrect(t *testing.T) {
	g := rmat.New(8, 3)
	und := graph.Undirected(g.Generate())
	n := g.NumVertices()
	res, err := Run(Config{Spec: cluster.SSD(1)}, &algorithms.BFS{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	want := refalgo.BFSLevels(graph.BuildAdjacency(und, n), 0)
	for i := range res.Values {
		if res.Values[i].Level != want[i] {
			t.Fatalf("vertex %d: level %d, want %d", i, res.Values[i].Level, want[i])
		}
	}
}

func TestPageRankCorrect(t *testing.T) {
	g := rmat.New(8, 5)
	edges := g.Generate()
	n := g.NumVertices()
	res, err := Run(Config{Spec: cluster.SSD(1)}, &algorithms.PageRank{Iterations: 5}, edges, n)
	if err != nil {
		t.Fatal(err)
	}
	want := refalgo.PageRank(graph.BuildAdjacency(edges, n), 5)
	for i := range res.Values {
		if math.Abs(float64(res.Values[i].Rank)-want[i]) > 1e-3*math.Max(1, want[i]) {
			t.Fatalf("vertex %d: rank %g, want %g", i, res.Values[i].Rank, want[i])
		}
	}
	if res.Iterations != 5 {
		t.Errorf("iterations = %d, want 5", res.Iterations)
	}
}

func TestMultiplePartitionsCorrect(t *testing.T) {
	g := rmat.New(8, 7)
	und := graph.Undirected(g.Generate())
	n := g.NumVertices()
	cfg := Config{Spec: cluster.SSD(1), MemBudget: int64(n) * 5 / 4}
	res, err := Run(cfg, &algorithms.WCC{}, und, n)
	if err != nil {
		t.Fatal(err)
	}
	want := refalgo.WCCLabels(graph.BuildAdjacency(und, n))
	for i := range res.Values {
		if res.Values[i].Label != want[i] {
			t.Fatalf("vertex %d: label %d, want %d", i, res.Values[i].Label, want[i])
		}
	}
}

func TestEmptyGraphRejected(t *testing.T) {
	if _, err := Run(Config{Spec: cluster.SSD(1)}, &algorithms.BFS{}, nil, 0); err == nil {
		t.Error("empty graph should error")
	}
}
