// Package xstream implements the single-machine comparison column of
// Table 1: an X-Stream-style edge-centric engine using streaming partitions
// with direct local I/O. Running the same GAS programs as Chaos, it differs
// from a one-machine Chaos deployment exactly where the paper says the two
// systems differ (§8): X-Stream issues direct, synchronous I/O against the
// local device with no client-server indirection, while Chaos routes every
// chunk through its storage-engine protocol to facilitate distribution.
// Table 1 accordingly shows X-Stream somewhat faster on a single machine.
package xstream

import (
	"fmt"

	"chaos/internal/cluster"
	"chaos/internal/gas"
	"chaos/internal/graph"
	"chaos/internal/partition"
	"chaos/internal/sim"
)

// Config parameterizes a single-machine X-Stream run.
type Config struct {
	// Spec supplies the device parameters (only one machine is used).
	Spec cluster.Spec
	// ChunkBytes is the streaming block size.
	ChunkBytes int
	// MemBudget bounds a streaming partition's vertex set (§3); zero
	// means one partition.
	MemBudget int64
	// MaxIterations caps the loop (0 = 1000).
	MaxIterations int
}

// Result carries the outcome of a run.
type Result[V any] struct {
	Values     []V
	Runtime    sim.Time
	Iterations int
	BytesMoved int64
}

// Run executes prog over edges on a single machine with direct I/O.
// X-Stream overlaps computation with streaming I/O through multiple
// in-flight buffers, so the modeled time is the I/O time; CPU work on these
// algorithms streams faster than the device delivers.
func Run[V, U, A any](cfg Config, prog gas.Program[V, U, A], edges []graph.Edge, numVertices uint64) (*Result[V], error) {
	if numVertices == 0 {
		numVertices = graph.MaxVertex(edges)
	}
	if numVertices == 0 {
		return nil, fmt.Errorf("xstream: empty graph")
	}
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = 4 << 20
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 1000
	}
	vcodec := prog.VertexCodec()
	ucodec := prog.UpdateCodec()
	memBudget := cfg.MemBudget
	if memBudget <= 0 {
		memBudget = int64(numVertices+1) * int64(vcodec.Bytes)
	}
	layout, err := partition.NewLayout(numVertices, 1, int64(vcodec.Bytes), memBudget)
	if err != nil {
		return nil, err
	}
	edgeFmt := graph.FormatFor(numVertices, prog.Weighted())
	idBytes := 4
	if numVertices >= 1<<32 {
		idBytes = 8
	}
	updBytes := idBytes + ucodec.Bytes

	env := sim.NewEnv(1)
	spec := cfg.Spec
	spec.Machines = 1
	clu := cluster.New(env, spec)
	dev := clu.Machines[0].Device

	res := &Result[V]{}
	env.Spawn("xstream", func(p *sim.Proc) {
		// Pre-processing: one pass binning edges by source partition.
		edgeSize := edgeFmt.EdgeSize()
		dev.Use(p, int64(len(edges)*edgeSize)) // read input
		parts := layout.BinEdges(edges)
		for _, es := range parts {
			dev.Use(p, int64(len(es)*edgeSize)) // write binned edge sets
		}

		// Vertex state per partition, resident on "disk" between uses.
		verts := make([][]V, layout.NumPartitions)
		var degrees [][]uint32
		if prog.NeedsDegrees() {
			degrees = make([][]uint32, layout.NumPartitions)
			for pi := range degrees {
				degrees[pi] = make([]uint32, layout.Size(pi))
			}
			for _, e := range edges {
				pi := layout.Of(e.Src)
				lo, _ := layout.Range(pi)
				degrees[pi][e.Src-lo]++
			}
		}
		for pi := range verts {
			lo, hi := layout.Range(pi)
			vs := make([]V, hi-lo)
			for i := range vs {
				var d uint32
				if degrees != nil {
					d = degrees[pi][i]
				}
				prog.Init(lo+graph.VertexID(i), &vs[i], d)
			}
			verts[pi] = vs
			dev.Use(p, int64(len(vs)*vcodec.Bytes)) // write vertex set
		}

		updates := make([][]struct {
			dst graph.VertexID
			val U
		}, layout.NumPartitions)

		for iter := 0; iter < cfg.MaxIterations; iter++ {
			// Scatter: stream each partition's edges sequentially.
			for pi := range parts {
				dev.Use(p, int64(len(verts[pi])*vcodec.Bytes)) // load vertices
				lo, _ := layout.Range(pi)
				dev.Use(p, int64(len(parts[pi])*edgeSize))
				for _, e := range parts[pi] {
					dst, val, emit := prog.Scatter(iter, e, &verts[pi][e.Src-lo])
					if !emit {
						continue
					}
					tp := layout.Of(dst)
					updates[tp] = append(updates[tp], struct {
						dst graph.VertexID
						val U
					}{dst, val})
				}
			}
			// Write out the produced update sets.
			for _, us := range updates {
				dev.Use(p, int64(len(us)*updBytes))
			}
			// Gather + apply per partition.
			var changed uint64
			for pi := range parts {
				dev.Use(p, int64(len(verts[pi])*vcodec.Bytes)) // load vertices
				lo, _ := layout.Range(pi)
				accums := make([]A, len(verts[pi]))
				for i := range accums {
					accums[i] = prog.InitAccum()
				}
				dev.Use(p, int64(len(updates[pi])*updBytes)) // stream updates
				for _, u := range updates[pi] {
					accums[u.dst-lo] = prog.Gather(accums[u.dst-lo], u.val, &verts[pi][u.dst-lo])
				}
				for i := range verts[pi] {
					if prog.Apply(iter, lo+graph.VertexID(i), &verts[pi][i], accums[i]) {
						changed++
					}
				}
				dev.Use(p, int64(len(verts[pi])*vcodec.Bytes)) // write back
				updates[pi] = updates[pi][:0]
			}
			res.Iterations = iter + 1
			if prog.Converged(iter, changed) {
				break
			}
		}

		// Assemble final values.
		out := make([]V, numVertices)
		for pi := range verts {
			lo, _ := layout.Range(pi)
			copy(out[lo:], verts[pi])
		}
		res.Values = out
	})
	env.Run()
	env.Close()
	res.Runtime = env.Now()
	res.BytesMoved = dev.Bytes()
	return res, nil
}
