package chaos

import (
	"math"
	"reflect"
	"testing"

	"chaos/internal/graph"
	"chaos/internal/refalgo"
)

func labOptions(m int) Options {
	return Options{
		Machines:   m,
		ChunkBytes: 4 << 10,
		Seed:       1,
	}
}

// TestComputeWorkersDoNotChangeResults is the public-API face of the
// engine's determinism contract: for every algorithm, a serial run
// (ComputeWorkers = 1) and a pooled run produce bit-identical Results and
// Reports — including SimulatedSeconds and the full Figure 17 breakdown.
func TestComputeWorkersDoNotChangeResults(t *testing.T) {
	for _, alg := range Algorithms() {
		edges := GenerateRMAT(6, NeedsWeights(alg), 42)
		serial := labOptions(4)
		serial.MemBudgetBytes = 1 << 8 // several partitions per machine
		serial.ComputeWorkers = 1
		parallel := serial
		parallel.ComputeWorkers = 8
		res1, rep1, err := RunByNameResult(alg, edges, 0, serial)
		if err != nil {
			t.Fatalf("%s serial: %v", alg, err)
		}
		res2, rep2, err := RunByNameResult(alg, edges, 0, parallel)
		if err != nil {
			t.Fatalf("%s parallel: %v", alg, err)
		}
		if !reflect.DeepEqual(res1, res2) {
			t.Errorf("%s: results differ across worker counts:\nserial:   %+v\nparallel: %+v", alg, res1, res2)
		}
		if !reflect.DeepEqual(rep1, rep2) {
			t.Errorf("%s: reports differ across worker counts:\nserial:   %+v\nparallel: %+v", alg, rep1, rep2)
		}
	}
}

func TestRunBFSPublicAPI(t *testing.T) {
	edges := GenerateRMAT(8, false, 42)
	levels, rep, err := RunBFS(edges, 0, 0, labOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	und := graph.Undirected(edges)
	want := refalgo.BFSLevels(graph.BuildAdjacency(und, 0), 0)
	for i := range levels {
		if levels[i] != want[i] {
			t.Fatalf("vertex %d: level %d, want %d", i, levels[i], want[i])
		}
	}
	if rep.Algorithm != "BFS" || rep.Machines != 4 {
		t.Errorf("report header wrong: %+v", rep)
	}
	if rep.SimulatedSeconds <= 0 || rep.Iterations == 0 {
		t.Errorf("report stats missing: %+v", rep)
	}
}

func TestRunPageRankPublicAPI(t *testing.T) {
	edges := GenerateRMAT(8, false, 42)
	ranks, rep, err := RunPageRank(edges, 0, 5, labOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	want := refalgo.PageRank(graph.BuildAdjacency(edges, 0), 5)
	for i := range ranks {
		if math.Abs(float64(ranks[i])-want[i]) > 1e-3*math.Max(1, want[i]) {
			t.Fatalf("vertex %d: rank %g, want %g", i, ranks[i], want[i])
		}
	}
	if rep.Iterations != 5 {
		t.Errorf("iterations = %d, want 5", rep.Iterations)
	}
}

func TestRunByNameAllAlgorithms(t *testing.T) {
	plain := GenerateRMAT(7, false, 7)
	weighted := GenerateRMAT(7, true, 7)
	for _, name := range Algorithms() {
		edges := plain
		if NeedsWeights(name) {
			edges = weighted
		}
		rep, err := RunByName(name, edges, 0, labOptions(2))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Algorithm != name {
			t.Errorf("%s: report says %s", name, rep.Algorithm)
		}
		if rep.SimulatedSeconds <= 0 {
			t.Errorf("%s: no simulated time", name)
		}
	}
	if _, err := RunByName("NOPE", plain, 0, labOptions(1)); err == nil {
		t.Error("unknown algorithm should error")
	}
}

func TestOptionsTranslate(t *testing.T) {
	o := Options{Machines: 8, Storage: HDD, Network: Net1GigE, Cores: 8, DisableStealing: true}
	cfg := o.config()
	if cfg.Spec.Machines != 8 || cfg.Spec.Cores != 8 {
		t.Errorf("spec wrong: %+v", cfg.Spec)
	}
	if cfg.Spec.StorageBytesPerSec != 200e6 {
		t.Errorf("HDD bandwidth wrong: %g", cfg.Spec.StorageBytesPerSec)
	}
	if cfg.Spec.NICBytesPerSec != 125e6 {
		t.Errorf("1GigE bandwidth wrong: %g", cfg.Spec.NICBytesPerSec)
	}
	if cfg.Alpha != 0 {
		t.Errorf("DisableStealing should give alpha 0, got %g", cfg.Alpha)
	}
	o2 := Options{AlwaysSteal: true}
	if !math.IsInf(o2.config().Alpha, 1) {
		t.Error("AlwaysSteal should give alpha = +inf")
	}
	if (Options{}).config().Alpha != 1 {
		t.Error("default alpha should be 1")
	}
}

func TestBreakdownFractionsSumToOne(t *testing.T) {
	edges := GenerateRMAT(8, false, 11)
	opt := labOptions(4)
	opt.MemBudgetBytes = int64(NumVertices(edges)) * 8 / 4 // force partitions
	_, rep, err := RunPageRank(edges, 0, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, f := range rep.Breakdown {
		if f < 0 || f > 1 {
			t.Errorf("fraction out of range: %v", rep.Breakdown)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("breakdown sums to %g, want 1", sum)
	}
}

func TestUndirectedAndNumVertices(t *testing.T) {
	edges := []Edge{{Src: 0, Dst: 9}}
	if NumVertices(edges) != 10 {
		t.Errorf("NumVertices = %d", NumVertices(edges))
	}
	if len(Undirected(edges)) != 2 {
		t.Error("Undirected should double the edge list")
	}
}

func TestTheoreticalUtilizationExports(t *testing.T) {
	if u := TheoreticalUtilization(32, 5); u < 0.99 {
		t.Errorf("rho(32,5) = %f", u)
	}
	if f := UtilizationFloor(5); math.Abs(f-(1-math.Exp(-5))) > 1e-12 {
		t.Errorf("floor(5) = %f", f)
	}
}

func TestWebGraphGeneratorExport(t *testing.T) {
	edges := GenerateWebGraph(500, 3)
	if len(edges) == 0 {
		t.Fatal("no edges generated")
	}
	if NumVertices(edges) > 500 {
		t.Errorf("vertex IDs out of range: %d", NumVertices(edges))
	}
}
