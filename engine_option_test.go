package chaos

import (
	"context"
	"math"
	"testing"
)

func TestParseEngine(t *testing.T) {
	for _, in := range []string{"", "sim", "des", "SIM", "Des"} {
		if got, err := ParseEngine(in); err != nil || got != EngineSim {
			t.Errorf("ParseEngine(%q) = %q, %v; want sim", in, got, err)
		}
	}
	for _, in := range []string{"native", "Native", "NATIVE"} {
		if got, err := ParseEngine(in); err != nil || got != EngineNative {
			t.Errorf("ParseEngine(%q) = %q, %v; want native", in, got, err)
		}
	}
	if _, err := ParseEngine("turbo"); err == nil {
		t.Error("ParseEngine(turbo) should error")
	}
}

func TestEngineFingerprint(t *testing.T) {
	base := Options{}.Fingerprint()
	if (Options{Engine: EngineNative}).Fingerprint() == base {
		t.Error("native engine must not share the sim cache entry")
	}
	// Aliases of the default fold into it.
	if (Options{Engine: "des"}).Fingerprint() != base {
		t.Error("engine alias des should canonicalize to sim")
	}
	if (Options{Engine: "sim"}).Fingerprint() != base {
		t.Error("explicit sim should equal the default")
	}
	if (Options{Engine: EngineNative}).Canonical().Engine != EngineNative {
		t.Error("canonical form lost the native engine")
	}
}

func TestUnknownEngineRejected(t *testing.T) {
	edges := GenerateRMAT(5, false, 1)
	opt := labOptions(1)
	opt.Engine = "turbo"
	if _, err := RunByName("PR", edges, 0, opt); err == nil {
		t.Fatal("unknown engine should fail the run")
	}
}

// TestNativeEngineEndToEnd drives the native execution plane through the
// public API and checks the report's engine-specific shape plus summary
// agreement with the DES driver on the same graph.
func TestNativeEngineEndToEnd(t *testing.T) {
	for _, alg := range []string{"BFS", "PR", "WCC"} {
		edges := GenerateRMAT(6, NeedsWeights(alg), 42)
		simOpt := labOptions(2)
		natOpt := simOpt
		natOpt.Engine = EngineNative

		simRes, simRep, err := RunByNameResult(alg, edges, 0, simOpt)
		if err != nil {
			t.Fatalf("%s sim: %v", alg, err)
		}
		natRes, natRep, err := RunByNameResult(alg, edges, 0, natOpt)
		if err != nil {
			t.Fatalf("%s native: %v", alg, err)
		}
		if simRep.Engine != EngineSim || simRep.WallSeconds != 0 {
			t.Errorf("%s: sim report engine fields wrong: %+v", alg, simRep)
		}
		if natRep.Engine != EngineNative {
			t.Errorf("%s: native report says engine %q", alg, natRep.Engine)
		}
		if natRep.WallSeconds <= 0 {
			t.Errorf("%s: native report has no wall-clock", alg)
		}
		if natRep.SimulatedSeconds != 0 || natRep.PreprocessSeconds != 0 {
			t.Errorf("%s: native report claims simulated time: %+v", alg, natRep)
		}
		if natRep.BytesRead == 0 || natRep.Iterations == 0 {
			t.Errorf("%s: native report not populated: %+v", alg, natRep)
		}
		if natRes.Vertices != simRes.Vertices {
			t.Errorf("%s: vertex counts differ: %d vs %d", alg, natRes.Vertices, simRes.Vertices)
		}
		for k, sv := range simRes.Summary {
			nv, ok := natRes.Summary[k]
			if !ok {
				t.Errorf("%s: native summary lacks %q", alg, k)
				continue
			}
			if math.Abs(nv-sv) > 1e-4*math.Max(1, math.Abs(sv)) {
				t.Errorf("%s: summary %q differs: sim %g vs native %g", alg, k, sv, nv)
			}
		}
	}
}

// TestNativeEngineCancelAndProgress checks the native driver honors the
// same context contract as the DES driver — cancellation at an iteration
// boundary surfaces ctx.Err() — and that its progress ticks carry
// wall-clock, never simulated seconds.
func TestNativeEngineCancelAndProgress(t *testing.T) {
	edges := GenerateRMAT(6, false, 7)
	opt := labOptions(2)
	opt.Engine = EngineNative

	var ticks []Progress
	ctx, cancel := context.WithCancel(context.Background())
	ctx = WithProgress(ctx, func(p Progress) {
		ticks = append(ticks, p)
		if len(ticks) == 1 {
			cancel() // observed at the next iteration boundary
		}
	})
	_, _, err := RunPreparedContext(ctx, "PR", edges, 0, opt)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(ticks) < 1 {
		t.Fatal("no progress ticks before cancellation")
	}
	for _, p := range ticks {
		if p.SimulatedSeconds != 0 {
			t.Errorf("native tick claims simulated seconds: %+v", p)
		}
		if p.WallSeconds <= 0 {
			t.Errorf("native tick lacks wall-clock: %+v", p)
		}
	}
}
