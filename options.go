package chaos

import (
	"fmt"
	"strconv"
	"strings"
)

// String returns the flag/API spelling of the storage device ("ssd" or
// "hdd"), the inverse of ParseStorage.
func (s Storage) String() string {
	if s == HDD {
		return "hdd"
	}
	return "ssd"
}

// String returns the flag/API spelling of the network ("40g" or "1g"),
// the inverse of ParseNetwork.
func (n Network) String() string {
	if n == Net1GigE {
		return "1g"
	}
	return "40g"
}

// ParseAlgorithm resolves a case-insensitive algorithm name to its
// canonical Table 1 spelling ("pagerank" and "pr" both mean "PR").
func ParseAlgorithm(name string) (string, error) {
	aliases := map[string]string{
		"pagerank": "PR", "conductance": "Cond",
	}
	if canon, ok := aliases[strings.ToLower(name)]; ok {
		return canon, nil
	}
	for _, a := range Algorithms() {
		if strings.EqualFold(a, name) {
			return a, nil
		}
	}
	return "", errUnknownAlgorithm(name)
}

// ParseStorage resolves a storage-device name; the empty string means the
// default SSD.
func ParseStorage(name string) (Storage, error) {
	switch strings.ToLower(name) {
	case "", "ssd":
		return SSD, nil
	case "hdd":
		return HDD, nil
	}
	return SSD, fmt.Errorf("chaos: unknown storage %q (want ssd or hdd)", name)
}

// ParseNetwork resolves a network name; the empty string means the
// default 40 GigE.
func ParseNetwork(name string) (Network, error) {
	switch strings.ToLower(name) {
	case "", "40g", "40gige":
		return Net40GigE, nil
	case "1g", "1gige":
		return Net1GigE, nil
	}
	return Net40GigE, fmt.Errorf("chaos: unknown network %q (want 40g or 1g)", name)
}

// ParseEngine resolves an execution-engine name; the empty string and
// "des" mean the default discrete-event-simulation driver. Every front
// end (-engine flags, the job API's "engine" option) routes through it
// so the names and error messages match everywhere.
func ParseEngine(name string) (string, error) {
	switch strings.ToLower(name) {
	case "", "sim", "des":
		return EngineSim, nil
	case "native":
		return EngineNative, nil
	}
	return "", fmt.Errorf("chaos: unknown engine %q (want sim or native)", name)
}

// ParseOptions validates the string-typed knobs shared by the CLIs and
// the job service — algorithm, storage and network names — and returns
// the canonical algorithm name plus base with the parsed hardware
// applied. An empty algorithm skips algorithm resolution (for callers
// that only need the hardware), and empty storage/network strings leave
// the paper defaults. Routing every front end through this one helper
// keeps their validation and error messages identical.
func ParseOptions(alg, storage, network string, base Options) (string, Options, error) {
	canon := ""
	if alg != "" {
		var err error
		canon, err = ParseAlgorithm(alg)
		if err != nil {
			return "", base, err
		}
	}
	st, err := ParseStorage(storage)
	if err != nil {
		return "", base, err
	}
	net, err := ParseNetwork(network)
	if err != nil {
		return "", base, err
	}
	base.Storage = st
	base.Network = net
	return canon, base, nil
}

// Canonical returns o with every implied default made explicit, such that
// two Options produce identical runs over the same input if and only if
// their canonical forms are equal, and running the canonical form behaves
// exactly like running o. The job service keys its result cache on the
// canonical form so that, e.g., {Seed: 0} and {Seed: 1} share one entry.
//
// The explicit values must stay in lockstep with the engine defaults
// (cluster.SSD, core.DefaultConfig, Config.normalize): if a default
// changes there without changing here, equal fingerprints would no
// longer imply equal runs. TestCanonicalRunEquivalence sweeps option
// shapes to catch such drift.
func (o Options) Canonical() Options {
	c := o
	if c.Machines <= 0 {
		c.Machines = 1
	}
	if c.Storage != HDD {
		c.Storage = SSD
	}
	if c.Network != Net1GigE {
		c.Network = Net40GigE
	}
	if c.Cores <= 0 {
		c.Cores = 16
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 4 << 20
	}
	if c.VertexChunkBytes <= 0 {
		c.VertexChunkBytes = c.ChunkBytes
	}
	if c.MemBudgetBytes < 0 {
		c.MemBudgetBytes = 0
	}
	if c.MemoryBudgetMB < 0 {
		c.MemoryBudgetMB = 0
	}
	if c.BatchK <= 0 {
		c.BatchK = 5
	}
	if c.WindowOverride < 0 {
		c.WindowOverride = 0
	}
	// Fold the three stealing knobs into one canonical triple: the
	// engine resolves DisableStealing, then AlwaysSteal, then Alpha, with
	// alpha = 1 the paper default when none is set.
	switch {
	case c.DisableStealing:
		c.Alpha, c.AlwaysSteal = 0, false
	case c.AlwaysSteal:
		c.Alpha = 0
	case c.Alpha <= 0:
		c.Alpha = 1
	}
	if c.CheckpointEvery < 0 {
		c.CheckpointEvery = 0
	}
	// CentralDirectory, CombineUpdates, RewriteEdges and
	// ReplicateVertices are pure feature toggles with no implied
	// defaults: their canonical form is themselves. Named here so the
	// fingerprint analyzer proves no field was forgotten instead of
	// assuming the `c := o` copy was intentional.
	_, _, _, _ = c.CentralDirectory, c.CombineUpdates, c.RewriteEdges, c.ReplicateVertices
	if c.FailAtIteration < 0 {
		c.FailAtIteration = 0
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 1000
	}
	if c.LatencyScale <= 0 {
		c.LatencyScale = 1
	}
	// ComputeWorkers is a host-performance knob: the engine guarantees
	// bit-identical results, reports and simulated times for every value
	// (see internal/core/parallel.go), so all values canonicalize to the
	// default and share one cache entry.
	c.ComputeWorkers = 0
	// Engine aliases fold to their canonical spelling; an unknown name
	// is left as-is (Canonical cannot fail) and rejected when the run
	// starts. The two engines never share a cache entry: their reports
	// differ (virtual vs wall time) and float folds may differ too.
	if eng, err := ParseEngine(c.Engine); err == nil {
		c.Engine = eng
	}
	// NativeBarrier is a pure toggle too. It keeps final values
	// bit-identical, but the report's steal counters and wall-clock are
	// phase-layout-dependent, so the two layouts do not share a cache
	// entry.
	_ = c.NativeBarrier
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// fingerprintFields lists, in encoding order, the Options field each
// Fingerprint component is derived from. TestFingerprintCoversAllFields
// reflects over Options and fails when a field is added without extending
// both this table and the encoder below — the guard that keeps new fields
// from silently falling out of the result-cache key.
var fingerprintFields = []string{
	"Machines", "Storage", "Network", "Cores", "ChunkBytes",
	"VertexChunkBytes", "MemBudgetBytes", "MemoryBudgetMB", "BatchK",
	"WindowOverride",
	"Alpha", "DisableStealing", "AlwaysSteal", "CheckpointEvery",
	"FailAtIteration", "CentralDirectory", "CombineUpdates",
	"RewriteEdges", "ReplicateVertices", "MaxIterations", "LatencyScale",
	"ComputeWorkers", "Engine", "NativeBarrier", "Seed",
}

// Fingerprint returns a deterministic string identifying the effective
// configuration. Two Options share a fingerprint exactly when their
// canonical forms are equal; the job service hashes it (together with the
// graph and algorithm) to content-address cached results.
//
// Every field is encoded explicitly, field by field. The previous
// implementation rendered the struct with fmt's %#v, which would have
// poisoned cache keys with memory addresses the moment Options grew a
// pointer, slice or map field.
func (o Options) Fingerprint() string {
	c := o.Canonical()
	var b strings.Builder
	app := func(name, val string) {
		b.WriteString(name)
		b.WriteByte('=')
		b.WriteString(val)
		b.WriteByte(';')
	}
	itoa := strconv.Itoa
	ftoa := func(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
	btoa := strconv.FormatBool
	app("machines", itoa(c.Machines))
	app("storage", c.Storage.String())
	app("network", c.Network.String())
	app("cores", itoa(c.Cores))
	app("chunkBytes", itoa(c.ChunkBytes))
	app("vertexChunkBytes", itoa(c.VertexChunkBytes))
	app("memBudgetBytes", strconv.FormatInt(c.MemBudgetBytes, 10))
	app("memoryBudgetMB", strconv.FormatInt(c.MemoryBudgetMB, 10))
	app("batchK", itoa(c.BatchK))
	app("windowOverride", itoa(c.WindowOverride))
	app("alpha", ftoa(c.Alpha))
	app("disableStealing", btoa(c.DisableStealing))
	app("alwaysSteal", btoa(c.AlwaysSteal))
	app("checkpointEvery", itoa(c.CheckpointEvery))
	app("failAtIteration", itoa(c.FailAtIteration))
	app("centralDirectory", btoa(c.CentralDirectory))
	app("combineUpdates", btoa(c.CombineUpdates))
	app("rewriteEdges", btoa(c.RewriteEdges))
	app("replicateVertices", btoa(c.ReplicateVertices))
	app("maxIterations", itoa(c.MaxIterations))
	app("latencyScale", ftoa(c.LatencyScale))
	app("computeWorkers", itoa(c.ComputeWorkers))
	app("engine", c.Engine)
	app("nativeBarrier", btoa(c.NativeBarrier))
	app("seed", strconv.FormatInt(c.Seed, 10))
	return b.String()
}
