package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// TestTraceDeterminism is the flight recorder's bit-identity guarantee
// on the DES engine: for every algorithm, a run with a trace recorder
// attached produces a bit-identical Result, Report and virtual clock to
// one without, and the recorded spans cover both machines' scatter and
// gather work.
func TestTraceDeterminism(t *testing.T) {
	opt := Options{
		Machines: 2, ChunkBytes: 1 << 10, LatencyScale: 1.0 / 4096,
		MemBudgetBytes: 1 << 12, Seed: 1,
	}
	edges := GenerateRMAT(6, true, 42)
	for _, alg := range Algorithms() {
		t.Run(alg, func(t *testing.T) {
			view, err := ViewFor(alg)
			if err != nil {
				t.Fatal(err)
			}
			prepared := view.Apply(edges)
			want, wantRep, err := RunPrepared(alg, prepared, 1<<6, opt)
			if err != nil {
				t.Fatal(err)
			}
			rec := NewTraceRecorder(1 << 14)
			ctx := WithTrace(context.Background(), rec.Record)
			got, gotRep, err := RunPreparedContext(ctx, alg, prepared, 1<<6, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("result drifted under a trace recorder:\n%+v\nvs\n%+v", got, want)
			}
			if !reflect.DeepEqual(gotRep, wantRep) {
				t.Errorf("report drifted under a trace recorder:\n%+v\nvs\n%+v", gotRep, wantRep)
			}
			// Bit-level virtual-clock check, not just DeepEqual of the
			// float: the clock is the acceptance criterion.
			if math.Float64bits(gotRep.SimulatedSeconds) != math.Float64bits(wantRep.SimulatedSeconds) {
				t.Errorf("virtual clock drifted: %v vs %v", gotRep.SimulatedSeconds, wantRep.SimulatedSeconds)
			}
			assertSpanCoverage(t, rec, opt.Machines)
		})
	}
}

// TestTraceDeterminismNative is the same guarantee on the native
// engine, scoped to what native runs keep deterministic for a fixed
// seed: the Result and the report's Iterations and byte totals
// (wall-clock and steal verdicts are scheduling-dependent by design;
// see the package comment of internal/core/native).
func TestTraceDeterminismNative(t *testing.T) {
	opt := Options{
		Machines: 2, ChunkBytes: 1 << 10,
		MemBudgetBytes: 1 << 12, Seed: 1, Engine: "native",
	}
	edges := GenerateRMAT(6, true, 42)
	for _, alg := range Algorithms() {
		t.Run(alg, func(t *testing.T) {
			view, err := ViewFor(alg)
			if err != nil {
				t.Fatal(err)
			}
			prepared := view.Apply(edges)
			want, wantRep, err := RunPrepared(alg, prepared, 1<<6, opt)
			if err != nil {
				t.Fatal(err)
			}
			rec := NewTraceRecorder(1 << 14)
			ctx := WithTrace(context.Background(), rec.Record)
			got, gotRep, err := RunPreparedContext(ctx, alg, prepared, 1<<6, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("result drifted under a trace recorder:\n%+v\nvs\n%+v", got, want)
			}
			if gotRep.Iterations != wantRep.Iterations {
				t.Errorf("iterations drifted: %d vs %d", gotRep.Iterations, wantRep.Iterations)
			}
			if gotRep.BytesRead != wantRep.BytesRead || gotRep.BytesWritten != wantRep.BytesWritten {
				t.Errorf("byte totals drifted: %d/%d vs %d/%d",
					gotRep.BytesRead, gotRep.BytesWritten, wantRep.BytesRead, wantRep.BytesWritten)
			}
			assertSpanCoverage(t, rec, opt.Machines)
		})
	}
}

// assertSpanCoverage checks the recorder saw per-machine preprocess
// work and scatter plus gather spans, and that the Chrome view of the
// recording is valid trace-event JSON.
func assertSpanCoverage(t *testing.T, rec *TraceRecorder, machines int) {
	t.Helper()
	spans, dropped := rec.Spans()
	if dropped != 0 {
		t.Fatalf("recorder overflowed (%d dropped); raise the test capacity", dropped)
	}
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	pre := map[int]bool{}
	perPhase := map[string]int{}
	for _, s := range spans {
		perPhase[s.Phase]++
		if s.Phase == PhasePreprocess {
			pre[s.Machine] = true
		}
	}
	if len(pre) != machines {
		t.Errorf("preprocess spans from %d machines, want %d", len(pre), machines)
	}
	if perPhase[PhaseScatter] == 0 || perPhase[PhaseGather] == 0 || perPhase[PhaseApply] == 0 {
		t.Errorf("missing phase coverage: %v", perPhase)
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome view is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < len(spans) {
		t.Errorf("chrome view holds %d events for %d spans", len(doc.TraceEvents), len(spans))
	}
}
