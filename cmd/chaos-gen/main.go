// chaos-gen generates binary edge-list files: R-MAT graphs (the synthetic
// workload of the Chaos evaluation, §8) or synthetic web crawls (the Data
// Commons stand-in).
//
// Usage:
//
//	chaos-gen -type rmat -scale 16 -weighted -o graph.bin
//	chaos-gen -type web -pages 100000 -o crawl.bin
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"chaos/internal/graph"
	"chaos/internal/rmat"
	"chaos/internal/webgraph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chaos-gen: ")
	var (
		typ      = flag.String("type", "rmat", "graph type: rmat or web")
		scale    = flag.Int("scale", 14, "R-MAT scale (2^scale vertices, 2^(scale+4) edges)")
		pages    = flag.Uint64("pages", 1<<14, "web graph page count")
		weighted = flag.Bool("weighted", false, "attach uniform [0,1) edge weights")
		seed     = flag.Int64("seed", 42, "generator seed")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var f graph.Format
	var each func(func(graph.Edge))
	var nv uint64
	switch *typ {
	case "rmat":
		g := rmat.New(*scale, *seed)
		g.Weighted = *weighted
		f = g.Format()
		each = g.Each
		nv = g.NumVertices()
	case "web":
		g := webgraph.New(*pages, *seed)
		f = g.Format()
		each = g.Each
		nv = g.NumVertices()
	default:
		log.Fatalf("unknown graph type %q (want rmat or web)", *typ)
	}

	w := os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := file.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = file
	}
	ew := graph.NewWriter(w, f)
	each(func(e graph.Edge) {
		if err := ew.WriteEdge(e); err != nil {
			log.Fatal(err)
		}
	})
	if err := ew.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d edges (%d vertices declared, format %v)\n", ew.Count(), nv, f)
}
