// chaos-gen generates binary edge-list files: R-MAT graphs (the synthetic
// workload of the Chaos evaluation, §8) or synthetic web crawls (the Data
// Commons stand-in).
//
// Usage:
//
//	chaos-gen -type rmat -scale 16 -weighted -o graph.bin
//	chaos-gen -type web -pages 100000 -o crawl.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"chaos/internal/cli"
	"chaos/internal/graph"
	"chaos/internal/rmat"
	"chaos/internal/webgraph"
)

func main() {
	logger := cli.NewLogger("chaos-gen")
	var (
		typ      = flag.String("type", "rmat", "graph type: rmat or web")
		scale    = flag.Int("scale", 14, "R-MAT scale (2^scale vertices, 2^(scale+4) edges)")
		pages    = flag.Uint64("pages", 1<<14, "web graph page count")
		weighted = flag.Bool("weighted", false, "attach uniform [0,1) edge weights")
		seed     = flag.Int64("seed", 42, "generator seed")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var f graph.Format
	var each func(func(graph.Edge))
	var nv uint64
	switch *typ {
	case "rmat":
		g := rmat.New(*scale, *seed)
		g.Weighted = *weighted
		f = g.Format()
		each = g.Each
		nv = g.NumVertices()
	case "web":
		g := webgraph.New(*pages, *seed)
		f = g.Format()
		each = g.Each
		nv = g.NumVertices()
	default:
		cli.Fatal(logger, "unknown graph type", fmt.Errorf("%q is not a graph type (want rmat or web)", *typ))
	}

	w := os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			cli.Fatal(logger, "creating output", err)
		}
		defer func() {
			if err := file.Close(); err != nil {
				cli.Fatal(logger, "closing output", err)
			}
		}()
		w = file
	}
	ew := graph.NewWriter(w, f)
	each(func(e graph.Edge) {
		if err := ew.WriteEdge(e); err != nil {
			cli.Fatal(logger, "writing edge", err)
		}
	})
	if err := ew.Flush(); err != nil {
		cli.Fatal(logger, "flushing output", err)
	}
	logger.Info("wrote graph", "edges", ew.Count(), "vertices", nv, "format", fmt.Sprint(f))
}
