// chaos-run executes one evaluation algorithm over an edge list on a
// simulated Chaos cluster and reports the runtime statistics the paper's
// evaluation uses (simulated wall-clock including pre-processing, I/O
// volumes, steal counts, and the Figure 17 breakdown).
//
// The input is either a binary edge-list file produced by chaos-gen (-input,
// with -vertices and -weighted describing its format) or a freshly
// generated R-MAT graph (-scale).
//
// Usage:
//
//	chaos-run -alg PR -scale 14 -machines 8
//	chaos-run -alg SSSP -input graph.bin -weighted -vertices 65536 -machines 4 -storage hdd
//	chaos-run -alg PR -scale 14 -machines 8 -engine native   # host-speed plane, wall-clock
//	chaos-run -alg PR -scale 14 -machines 4 -trace out.json  # flight-recorder timeline
//
// -engine native runs the same protocol on the native execution plane
// (goroutine groups, no virtual clock): identical results, host
// wall-clock instead of simulated seconds, no device-model figures.
//
// -trace attaches the flight recorder and writes the run's per-phase
// span timeline as Chrome trace_event JSON, loadable in about:tracing
// or Perfetto. Recording is observational-only: the run's results and
// report are bit-identical with and without it.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"chaos"
	"chaos/internal/cli"
	"chaos/internal/graph"
)

func main() {
	logger := cli.NewLogger("chaos-run")
	var (
		algName  = flag.String("alg", "PR", "algorithm: BFS WCC MCST MIS SSSP PR SCC Cond SpMV BP")
		input    = flag.String("input", "", "binary edge-list file (default: generate R-MAT)")
		vertices = flag.Uint64("vertices", 0, "vertex count of -input (0 = infer)")
		weighted = flag.Bool("weighted", false, "-input carries weights")
		scale    = flag.Int("scale", 14, "R-MAT scale when generating")
		machines = flag.Int("machines", 1, "cluster size")
		storage  = flag.String("storage", "ssd", "storage device: ssd or hdd")
		network  = flag.String("network", "40g", "network: 40g or 1g")
		cores    = flag.Int("cores", 16, "cores per machine")
		chunkKB  = flag.Int("chunk-kb", 4096, "chunk size in KiB (paper: 4096)")
		budgetMB = flag.Int64("mem-mb", 0, "per-machine vertex memory budget in MiB (0 = unconstrained)")
		updateMB = flag.Int64("memory-budget-mb", 0,
			"native engine update-memory budget in MiB; past it updates spill to temp files (out-of-core mode, 0 = unlimited)")
		ckpt   = flag.Int("checkpoint", 0, "checkpoint every n iterations (0 = off)")
		seed   = flag.Int64("seed", 1, "randomization seed")
		engine = flag.String("engine", "sim",
			"execution engine: sim (discrete-event simulation, virtual time) or native (host-speed goroutine plane, wall-clock)")
		nativeBarrier = flag.Bool("native-barrier", false,
			"restore the native engine's barrier-per-phase layout instead of the streaming scatter/gather pipeline (A/B measurement; values are identical)")
		traceOut = flag.String("trace", "",
			"write the run's flight-recorder timeline to this file as Chrome trace_event JSON (empty = no recording)")
		traceSpans = flag.Int("trace-spans", 1<<16,
			"flight-recorder capacity in spans; the oldest are dropped past it (with -trace)")
	)
	flag.Parse()

	// The shared helpers validate algorithm/storage/network/engine names
	// exactly as chaos-serve does, so error messages match across front
	// ends.
	alg, hw, err := chaos.ParseOptions(*algName, *storage, *network, chaos.Options{})
	if err != nil {
		cli.Fatal(logger, "parsing options", err)
	}
	eng, err := chaos.ParseEngine(*engine)
	if err != nil {
		cli.Fatal(logger, "parsing engine", err)
	}

	var edges []chaos.Edge
	n := *vertices
	if *input != "" {
		needW := *weighted || chaos.NeedsWeights(alg)
		f, err := os.Open(*input)
		if err != nil {
			cli.Fatal(logger, "opening input", err)
		}
		defer f.Close()
		// Without an explicit vertex count, assume the compact format
		// (files under 2^32 vertices) and infer the count from the
		// edges read.
		format := graph.FormatFor(1, needW)
		if n > 0 {
			format = graph.FormatFor(n, needW)
		}
		edges, err = graph.NewReader(f, format).ReadAll()
		if err != nil {
			cli.Fatal(logger, "reading edge list", err)
		}
		if n == 0 {
			n = chaos.NumVertices(edges)
		}
	} else {
		edges = chaos.GenerateRMAT(*scale, chaos.NeedsWeights(alg), 42)
		n = uint64(1) << uint(*scale)
	}

	opt := chaos.Options{
		Machines:        *machines,
		Storage:         hw.Storage,
		Network:         hw.Network,
		Cores:           *cores,
		ChunkBytes:      *chunkKB << 10,
		MemBudgetBytes:  *budgetMB << 20,
		MemoryBudgetMB:  *updateMB,
		CheckpointEvery: *ckpt,
		Seed:            *seed,
		LatencyScale:    float64(*chunkKB<<10) / float64(4<<20),
		Engine:          eng,
		NativeBarrier:   *nativeBarrier,
	}

	// Convert to the algorithm's edge view explicitly (instead of
	// through RunByName) so the run can go through RunPreparedContext,
	// the entry point that observes a context-attached flight recorder.
	view, err := chaos.ViewFor(alg)
	if err != nil {
		cli.Fatal(logger, "resolving edge view", err)
	}
	ctx := context.Background()
	var rec *chaos.TraceRecorder
	if *traceOut != "" {
		rec = chaos.NewTraceRecorder(*traceSpans)
		ctx = chaos.WithTrace(ctx, rec.Record)
	}
	_, rep, err := chaos.RunPreparedContext(ctx, alg, view.Apply(edges), n, opt)
	if err != nil {
		cli.Fatal(logger, "running algorithm", err)
	}
	if rec != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			cli.Fatal(logger, "creating trace file", err)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			cli.Fatal(logger, "writing trace", err)
		}
		if err := f.Close(); err != nil {
			cli.Fatal(logger, "closing trace file", err)
		}
		spans, dropped := rec.Spans()
		logger.Info("trace written", "path", *traceOut, "spans", len(spans), "dropped", dropped)
		if dropped > 0 {
			logger.Warn("trace ring overflowed; raise -trace-spans for a complete timeline", "dropped", dropped)
		}
	}

	fmt.Printf("algorithm          %s\n", rep.Algorithm)
	fmt.Printf("machines           %d\n", rep.Machines)
	fmt.Printf("engine             %s\n", rep.Engine)
	fmt.Printf("edges              %d\n", len(edges))
	if rep.Engine == chaos.EngineNative {
		// The native plane has no virtual clock: there are no simulated
		// seconds, device-utilization or breakdown figures to report.
		fmt.Printf("wall-clock runtime %.3fs\n", rep.WallSeconds)
	} else {
		fmt.Printf("simulated runtime  %.3fs (pre-processing %.3fs)\n", rep.SimulatedSeconds, rep.PreprocessSeconds)
	}
	fmt.Printf("iterations         %d\n", rep.Iterations)
	fmt.Printf("device I/O         %.2f MB read, %.2f MB written\n", float64(rep.BytesRead)/1e6, float64(rep.BytesWritten)/1e6)
	if rep.Engine == chaos.EngineNative {
		fmt.Printf("throughput         %.1f MB/s of chunk data moved\n", rep.AggregateBandwidth/1e6)
		fmt.Printf("steals             %d accepted, %d rejected\n", rep.StealsAccepted, rep.StealsRejected)
		// Checkpointing and recovery run for real on both planes; only
		// the device-model figures (utilization, breakdown) are sim-only.
		if rep.CheckpointBytes > 0 {
			fmt.Printf("checkpoint I/O     %.2f MB (%d recoveries)\n", float64(rep.CheckpointBytes)/1e6, rep.Recoveries)
		}
		if rep.SpillFiles > 0 {
			fmt.Printf("spill I/O          %.2f MB across %d spill files\n", float64(rep.SpillBytes)/1e6, rep.SpillFiles)
		}
		return
	}
	fmt.Printf("aggregate bw       %.1f MB/s (utilization %.1f%%)\n", rep.AggregateBandwidth/1e6, 100*rep.DeviceUtilization)
	fmt.Printf("steals             %d accepted, %d rejected\n", rep.StealsAccepted, rep.StealsRejected)
	if rep.CheckpointBytes > 0 {
		fmt.Printf("checkpoint I/O     %.2f MB\n", float64(rep.CheckpointBytes)/1e6)
	}
	fmt.Println("runtime breakdown:")
	keys := make([]string, 0, len(rep.Breakdown))
	for k := range rep.Breakdown {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-14s %6.1f%%\n", k, 100*rep.Breakdown[k])
	}
}
