// chaos-serve runs the graph-analytics job service: an HTTP front end
// over the chaos library that registers graphs once, executes algorithm
// jobs on a bounded worker pool, and memoizes results keyed on (graph,
// algorithm, canonical options). See README.md for the API with curl
// examples.
//
// Usage:
//
//	chaos-serve -addr :8080 -workers 4
//	chaos-serve -addr :8080 -chunk-kb 64        # lab-scale default chunks
//	chaos-serve -addr :8080 -data-dir /var/lib/chaos   # durable state
//	chaos-serve -addr :8080 -max-queue 256      # admission control (429 past it)
//	chaos-serve -addr :8080 -engine native      # default jobs to the host-speed plane
//
// Operability: GET /v1/jobs/{id} shows live iteration-boundary progress
// of a running job, GET /v1/jobs/{id}/events streams transitions and
// progress ticks as Server-Sent Events, GET /v1/jobs/{id}/trace serves
// the flight-recorder timeline of an executed run, and GET /metrics
// serves the service counters plus latency histograms in Prometheus
// text exposition format. Every request is logged as one structured
// line (log/slog) with a request id, method, path, matched route,
// status and duration. -debug-addr starts a second, operator-only
// listener with net/http/pprof (keep it off the public address). The
// queue is bounded by -max-queue: overflow answers 429 with
// Retry-After. The host compute budget (-compute-budget, default
// GOMAXPROCS) is divided across concurrently running simulations so N
// jobs do not oversubscribe the machine N×.
//
// With -data-dir, graph registrations, job history and memoized results
// survive restarts: state is journaled to a write-ahead log with
// periodic compacting snapshots, and results live in a size-bounded
// disk store (see DESIGN.md for the format and recovery semantics).
// Jobs that were queued or running when the process died are re-enqueued
// on the next start. Without -data-dir the service is purely in-memory,
// exactly as before.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener stops, queued
// jobs are canceled, running simulations drain, and (when durable) a
// final snapshot is written before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chaos"
	"chaos/internal/cli"
	"chaos/internal/service"
)

func main() {
	logger := cli.NewLogger("chaos-serve")
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 4, "concurrently running simulations")
		chunkKB  = flag.Int("chunk-kb", 4096, "default chunk size in KiB for jobs that set none (paper: 4096)")
		drainSec = flag.Int("drain-seconds", 120, "graceful-shutdown drain budget")
		maxQueue = flag.Int("max-queue", 1024,
			"queued-job bound; submissions past it answer 429 with Retry-After (0 = unbounded)")
		computeBudget = flag.Int("compute-budget", 0,
			"total engine compute workers shared across running jobs (0 = GOMAXPROCS, -1 = unmanaged)")

		dataDir       = flag.String("data-dir", "", "durable state directory (empty = in-memory only)")
		snapshotEvery = flag.Int("snapshot-every", 1024,
			"journal records between compacting snapshots (with -data-dir)")
		resultCacheMB = flag.Int("result-cache-mb", 512,
			"disk result store bound in MiB, LRU-evicted past it; 0 = unbounded (with -data-dir)")
		maxUploadMB = flag.Int("max-upload-mb", 64, "POST /v1/graphs body cap in MiB")
		engine      = flag.String("engine", "sim",
			"default execution engine for jobs that set none: sim (discrete-event simulation, virtual time) or native (host-speed goroutine plane)")
		memoryBudgetMB = flag.Int64("memory-budget-mb", 0,
			"default native update-memory budget in MiB for jobs that set none; past it updates spill to disk (0 = unlimited)")
		debugAddr = flag.String("debug-addr", "",
			"operator-only listener with net/http/pprof under /debug/pprof/ (empty = off; never expose publicly)")
		traceSpans = flag.Int("trace-spans", 8192,
			"per-job flight-recorder capacity in spans for GET /v1/jobs/{id}/trace; the oldest are dropped past it")
	)
	flag.Parse()

	defaultEngine, err := chaos.ParseEngine(*engine)
	if err != nil {
		cli.Fatal(logger, "parsing engine", err)
	}
	svc, err := service.Open(service.Config{
		Workers: *workers,
		BaseOptions: chaos.Options{
			ChunkBytes:     *chunkKB << 10,
			LatencyScale:   float64(*chunkKB<<10) / float64(4<<20),
			Engine:         defaultEngine,
			MemoryBudgetMB: *memoryBudgetMB,
		},
		MaxQueue:            *maxQueue,
		ComputeBudget:       *computeBudget,
		MaxUploadBytes:      int64(*maxUploadMB) << 20,
		DataDir:             *dataDir,
		SnapshotEvery:       *snapshotEvery,
		ResultStoreMaxBytes: int64(*resultCacheMB) << 20,
		Logger:              logger,
		TraceSpanCap:        *traceSpans,
	})
	if err != nil {
		cli.Fatal(logger, "opening service", err)
	}
	if *dataDir != "" {
		st := svc.Stats()
		logger.Info("durable state recovered",
			"dataDir", *dataDir, "graphs", st.Graphs, "jobs", sum(st.Jobs), "queueDepth", st.QueueDepth)
	}

	if *debugAddr != "" {
		// pprof on its own mux and listener: registering the handlers
		// explicitly (instead of the package's DefaultServeMux side
		// effect) keeps them off the public API address entirely.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("debug listener up", "addr", *debugAddr)
			dsrv := &http.Server{Addr: *debugAddr, Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
			if err := dsrv.ListenAndServe(); err != nil {
				logger.Error("debug listener failed", "err", err)
			}
		}()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	// SSE streams never go idle, so srv.Shutdown would wait its whole
	// deadline on one attached viewer; end them the moment drain starts.
	srv.RegisterOnShutdown(svc.CloseEventStreams)

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "workers", *workers)
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		svc.Close() // keep the journal consistent even on listen failure
		cli.Fatal(logger, "serving", err)
	case sig := <-sigc:
		logger.Info("draining", "signal", sig.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Duration(*drainSec)*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Error("http shutdown", "err", err)
	}
	// Shutdown drains the pool and, with -data-dir, writes the final
	// compacting snapshot before closing the journal.
	if err := svc.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("drain", "err", err)
	}
	logger.Info("bye")
}

func sum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
