// chaos-serve runs the graph-analytics job service: an HTTP front end
// over the chaos library that registers graphs once, executes algorithm
// jobs on a bounded worker pool, and memoizes results keyed on (graph,
// algorithm, canonical options). See README.md for the API with curl
// examples.
//
// Usage:
//
//	chaos-serve -addr :8080 -workers 4
//	chaos-serve -addr :8080 -chunk-kb 64        # lab-scale default chunks
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener stops, queued
// jobs are canceled, and running simulations drain before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chaos"
	"chaos/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chaos-serve: ")
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 4, "concurrently running simulations")
		chunkKB  = flag.Int("chunk-kb", 4096, "default chunk size in KiB for jobs that set none (paper: 4096)")
		drainSec = flag.Int("drain-seconds", 120, "graceful-shutdown drain budget")
	)
	flag.Parse()

	svc := service.New(service.Config{
		Workers: *workers,
		BaseOptions: chaos.Options{
			ChunkBytes:   *chunkKB << 10,
			LatencyScale: float64(*chunkKB<<10) / float64(4<<20),
		},
	})

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (%d workers)", *addr, *workers)
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("caught %v, draining", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Duration(*drainSec)*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := svc.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("drain: %v", err)
	}
	log.Print("bye")
}
