// chaos-serve runs the graph-analytics job service: an HTTP front end
// over the chaos library that registers graphs once, executes algorithm
// jobs on a bounded worker pool, and memoizes results keyed on (graph,
// algorithm, canonical options). See README.md for the API with curl
// examples.
//
// Usage:
//
//	chaos-serve -addr :8080 -workers 4
//	chaos-serve -addr :8080 -chunk-kb 64        # lab-scale default chunks
//	chaos-serve -addr :8080 -data-dir /var/lib/chaos   # durable state
//	chaos-serve -addr :8080 -max-queue 256      # admission control (429 past it)
//	chaos-serve -addr :8080 -engine native      # default jobs to the host-speed plane
//
// Operability: GET /v1/jobs/{id} shows live iteration-boundary progress
// of a running job, GET /v1/jobs/{id}/events streams transitions and
// progress ticks as Server-Sent Events, and GET /metrics serves the
// service counters in Prometheus text exposition format. The queue is
// bounded by -max-queue: overflow answers 429 with Retry-After. The
// host compute budget (-compute-budget, default GOMAXPROCS) is divided
// across concurrently running simulations so N jobs do not oversubscribe
// the machine N×.
//
// With -data-dir, graph registrations, job history and memoized results
// survive restarts: state is journaled to a write-ahead log with
// periodic compacting snapshots, and results live in a size-bounded
// disk store (see DESIGN.md for the format and recovery semantics).
// Jobs that were queued or running when the process died are re-enqueued
// on the next start. Without -data-dir the service is purely in-memory,
// exactly as before.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener stops, queued
// jobs are canceled, running simulations drain, and (when durable) a
// final snapshot is written before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chaos"
	"chaos/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chaos-serve: ")
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 4, "concurrently running simulations")
		chunkKB  = flag.Int("chunk-kb", 4096, "default chunk size in KiB for jobs that set none (paper: 4096)")
		drainSec = flag.Int("drain-seconds", 120, "graceful-shutdown drain budget")
		maxQueue = flag.Int("max-queue", 1024,
			"queued-job bound; submissions past it answer 429 with Retry-After (0 = unbounded)")
		computeBudget = flag.Int("compute-budget", 0,
			"total engine compute workers shared across running jobs (0 = GOMAXPROCS, -1 = unmanaged)")

		dataDir       = flag.String("data-dir", "", "durable state directory (empty = in-memory only)")
		snapshotEvery = flag.Int("snapshot-every", 1024,
			"journal records between compacting snapshots (with -data-dir)")
		resultCacheMB = flag.Int("result-cache-mb", 512,
			"disk result store bound in MiB, LRU-evicted past it; 0 = unbounded (with -data-dir)")
		maxUploadMB = flag.Int("max-upload-mb", 64, "POST /v1/graphs body cap in MiB")
		engine      = flag.String("engine", "sim",
			"default execution engine for jobs that set none: sim (discrete-event simulation, virtual time) or native (host-speed goroutine plane)")
	)
	flag.Parse()

	defaultEngine, err := chaos.ParseEngine(*engine)
	if err != nil {
		log.Fatal(err)
	}
	svc, err := service.Open(service.Config{
		Workers: *workers,
		BaseOptions: chaos.Options{
			ChunkBytes:   *chunkKB << 10,
			LatencyScale: float64(*chunkKB<<10) / float64(4<<20),
			Engine:       defaultEngine,
		},
		MaxQueue:            *maxQueue,
		ComputeBudget:       *computeBudget,
		MaxUploadBytes:      int64(*maxUploadMB) << 20,
		DataDir:             *dataDir,
		SnapshotEvery:       *snapshotEvery,
		ResultStoreMaxBytes: int64(*resultCacheMB) << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *dataDir != "" {
		st := svc.Stats()
		log.Printf("durable state in %s: recovered %d graphs, %d jobs (queue depth %d)",
			*dataDir, st.Graphs, sum(st.Jobs), st.QueueDepth)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	// SSE streams never go idle, so srv.Shutdown would wait its whole
	// deadline on one attached viewer; end them the moment drain starts.
	srv.RegisterOnShutdown(svc.CloseEventStreams)

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (%d workers)", *addr, *workers)
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		svc.Close() // keep the journal consistent even on listen failure
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("caught %v, draining", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Duration(*drainSec)*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	// Shutdown drains the pool and, with -data-dir, writes the final
	// compacting snapshot before closing the journal.
	if err := svc.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("drain: %v", err)
	}
	log.Print("bye")
}

func sum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
