// chaos-bench regenerates the tables and figures of the Chaos evaluation
// (SOSP 2015) on the simulated cluster. Each experiment prints the same
// rows/series the paper reports; EXPERIMENTS.md records paper-vs-measured.
//
// Usage:
//
//	chaos-bench                     # run everything at laboratory scale
//	chaos-bench -experiment fig16   # just the batch-factor sweep
//	chaos-bench -experiment native  # native plane vs DES wall-clock (BENCH_native.json)
//	chaos-bench -quick              # reduced smoke scale
//
//chaos:sorted-maps
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"chaos"
	"chaos/internal/cli"
	"chaos/internal/experiments"
)

var all = []struct {
	name string
	run  func(io.Writer, experiments.Scale) error
}{
	{"table1", experiments.Table1},
	{"fig5", experiments.Figure5},
	{"fig7", experiments.Figure7},
	{"fig8", experiments.Figure8},
	{"fig9", experiments.Figure9},
	{"capacity", experiments.Capacity},
	{"fig10", experiments.Figure10},
	{"fig11", experiments.Figure11},
	{"fig12", experiments.Figure12},
	{"fig13", experiments.Figure13},
	{"fig14", experiments.Figure14},
	{"fig15", experiments.Figure15},
	{"fig16", experiments.Figure16},
	{"fig17", experiments.Figure17},
	{"fig18", experiments.Figure18},
	{"fig19", experiments.Figure19},
	{"fig20", experiments.Figure20},
	{"native", experiments.NativeVsDES},
	{"abl-combiners", experiments.AblationCombiner},
	{"abl-compaction", experiments.AblationCompaction},
	{"abl-replication", experiments.AblationReplication},
	{"abl-partitions", experiments.AblationPartitionCount},
}

func main() {
	logger := cli.NewLogger("chaos-bench")
	var (
		which     = flag.String("experiment", "all", "experiment id (all, table1, fig5..fig20, capacity)")
		quick     = flag.Bool("quick", false, "use the reduced smoke scale")
		storage   = flag.String("storage", "ssd", "default storage device: ssd or hdd")
		network   = flag.String("network", "40g", "default network: 40g or 1g")
		benchJSON = flag.String("bench-json", ".", "directory for BENCH_<experiment>.json records (empty disables)")
		workers   = flag.Int("workers", 0, "engine compute workers (0 = GOMAXPROCS); results are identical for every value")
		engineFl  = flag.String("engine", "sim",
			"execution engine: sim reproduces the paper's figures; native selects the native-vs-DES wall-clock comparison (the figures themselves are DES-only)")
		cpuProfile = flag.String("cpuprofile", "",
			"write a runtime/pprof CPU profile of the experiments' timed region to this file (setup and flag parsing excluded)")
		memProfile = flag.String("memprofile", "",
			"write a runtime/pprof allocs profile to this file after the experiments finish (records every allocation since program start, so iteration-loop hot spots dominate)")
	)
	flag.Parse()

	// Hardware names go through the same helpers as chaos-run and
	// chaos-serve, so a typo fails with the identical message everywhere.
	_, hw, err := chaos.ParseOptions("", *storage, *network, chaos.Options{})
	if err != nil {
		cli.Fatal(logger, "parsing options", err)
	}
	engine, err := chaos.ParseEngine(*engineFl)
	if err != nil {
		cli.Fatal(logger, "parsing engine", err)
	}
	if engine == chaos.EngineNative {
		// The evaluation figures are produced by the DES driver and only
		// it (EXPERIMENTS.md): the native plane has no virtual clock, so
		// the only native benchmark is the wall-clock comparison.
		switch *which {
		case "all":
			*which = "native"
		case "native":
		default:
			cli.Fatal(logger, "bad flag combination", fmt.Errorf(
				"-engine native only applies to the native-vs-DES comparison; the figures are DES-only (run -experiment %s without -engine, or -experiment native)", *which))
		}
	}

	scale := experiments.Lab
	if *quick {
		scale = experiments.Quick
	}
	scale.Storage, scale.Network = hw.Storage, hw.Network
	scale.BenchDir, scale.ComputeWorkers = *benchJSON, *workers
	// Profiling brackets exactly the experiments' timed region — the
	// same code the wall-clock records measure — so "profile-driven" is
	// reproducible by anyone: chaos-bench -experiment native -cpuprofile
	// cpu.pb.gz, then go tool pprof (see EXPERIMENTS.md).
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			cli.Fatal(logger, "creating cpu profile", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			cli.Fatal(logger, "starting cpu profile", err)
		}
		defer pprof.StopCPUProfile()
	}
	ran := 0
	for _, e := range all {
		if *which != "all" && e.name != *which {
			continue
		}
		if err := e.run(os.Stdout, scale); err != nil {
			cli.Fatal(logger, e.name, err)
		}
		ran++
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			cli.Fatal(logger, "creating mem profile", err)
		}
		runtime.GC() // settle live objects so alloc_space dominates the view
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			cli.Fatal(logger, "writing mem profile", err)
		}
		f.Close()
	}
	if ran == 0 {
		names := make([]string, len(all))
		for i, e := range all {
			names[i] = e.name
		}
		cli.Fatal(logger, "unknown experiment", fmt.Errorf(
			"%q is not an experiment (want all or one of %s)", *which, strings.Join(names, " ")))
	}
	fmt.Println()
}
