// chaos-vet runs the repo's determinism and observability analyzers
// (internal/analysis) over Go packages, a multichecker in the style of
// golang.org/x/tools/go/analysis/multichecker built on the stdlib.
//
// Usage:
//
//	go run ./cmd/chaos-vet ./...                  # whole module
//	go run ./cmd/chaos-vet ./internal/core/...    # one subtree
//	go run ./cmd/chaos-vet scripts/perf_gate.go   # a //go:build ignore file
//	go run ./cmd/chaos-vet -fix ./...             # apply suggested fixes
//
// Arguments ending in .go are loaded as standalone files (imports
// resolved normally), which is how CI vets scripts that carry a
// //go:build ignore tag and are invisible to package patterns.
// Diagnostics print as file:line:col: message [analyzer]; the exit
// status is 1 when any diagnostic is reported, 2 on load errors.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"strings"

	"chaos/internal/analysis/chaosvet"
	"chaos/internal/analysis/framework"
	"chaos/internal/cli"
)

func main() {
	fix := flag.Bool("fix", false, "apply suggested fixes to the source files")
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	only := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: chaos-vet [-fix] [-list] [-analyzers a,b] [package pattern | file.go]...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	logger := cli.NewLogger("chaos-vet")

	analyzers := chaosvet.All()
	if *list {
		for _, a := range analyzers {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Printf("%-12s %s\n", a.Name, doc)
		}
		return
	}
	if *only != "" {
		byName := map[string]*framework.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				cli.Fatal(logger, "analyzers", fmt.Errorf("unknown analyzer %q (see -list)", name))
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgPatterns, files []string
	for _, p := range patterns {
		if strings.HasSuffix(p, ".go") {
			files = append(files, p)
		} else {
			pkgPatterns = append(pkgPatterns, p)
		}
	}

	// One FileSet serves every load of the run: package patterns and
	// standalone files alike. Mixing FileSets would make diagnostics
	// from one loader resolve into files of another.
	fset := token.NewFileSet()
	var pkgs []*framework.Package
	if len(pkgPatterns) > 0 {
		loaded, err := framework.Load(fset, ".", pkgPatterns...)
		if err != nil {
			cli.Fatal(logger, "load", err)
		}
		pkgs = loaded
	}
	for _, f := range files {
		pkg, err := framework.LoadFile(fset, ".", f)
		if err != nil {
			cli.Fatal(logger, "load file", err)
		}
		pkgs = append(pkgs, pkg)
	}
	if len(pkgs) == 0 {
		cli.Fatal(logger, "load", fmt.Errorf("no packages matched %s", strings.Join(patterns, " ")))
	}

	diags, err := framework.Run(pkgs, analyzers)
	if err != nil {
		cli.Fatal(logger, "analysis", err)
	}
	if len(diags) == 0 {
		return
	}

	for _, d := range diags {
		p := fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s [%s]\n", p.Filename, p.Line, p.Column, d.Message, d.Analyzer)
		for _, sf := range d.SuggestedFixes {
			note := " (apply with -fix)"
			if *fix {
				note = ""
			}
			fmt.Fprintf(os.Stderr, "\tsuggested fix: %s%s\n", sf.Message, note)
		}
	}
	if *fix {
		sources := map[string][]byte{}
		for _, pkg := range pkgs {
			for path, src := range pkg.Sources {
				sources[path] = src
			}
		}
		fixed, err := framework.ApplyFixes(fset, sources, diags)
		if err != nil {
			cli.Fatal(logger, "fix", err)
		}
		for path, content := range fixed {
			if err := os.WriteFile(path, content, 0o644); err != nil {
				cli.Fatal(logger, "fix", err)
			}
			fmt.Fprintf(os.Stderr, "chaos-vet: rewrote %s\n", path)
		}
		if len(fixed) > 0 {
			fmt.Fprintf(os.Stderr, "chaos-vet: fixes applied; run gofmt and re-run chaos-vet\n")
		}
	}
	os.Exit(1)
}
