// chaos-loadgen drives a running chaos-serve instance with concurrent
// job submitters and reports serving latency percentiles: it is the
// closed-loop benchmark behind BENCH_serve.json, the record CI tracks
// for the service layer the way BENCH_native.json tracks the engines.
//
// Each of -concurrency workers submits jobs (POST /v1/jobs), follows
// the run over the SSE event stream (falling back to polling if the
// stream breaks), and reads the final job view for server-side
// timestamps. Every job gets a distinct seed so the result cache never
// answers — the point is to measure execution, not memoization. 429
// admission rejections are honored by sleeping the server's
// Retry-After and retrying; they are counted, not failures.
//
// Usage:
//
//	chaos-loadgen -addr 127.0.0.1:8080 -jobs 50 -concurrency 8
//	chaos-loadgen -jobs 200 -concurrency 16 -alg SSSP -scale 10 -out BENCH_serve.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"chaos/internal/cli"
	"chaos/internal/obs"
)

// Wire mirrors of the chaos-serve API types (README.md): only the
// fields the load generator reads, so service-side additions never
// break it.
type graphSpec struct {
	Name  string `json:"name,omitempty"`
	Type  string `json:"type"`
	Scale int    `json:"scale,omitempty"`
	Seed  int64  `json:"seed,omitempty"`
}

type graphInfo struct {
	ID string `json:"id"`
}

type jobOptions struct {
	Machines int    `json:"machines,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	Engine   string `json:"engine,omitempty"`
}

type jobRequest struct {
	Graph     string     `json:"graph"`
	Algorithm string     `json:"algorithm"`
	Options   jobOptions `json:"options"`
}

type jobView struct {
	ID         string     `json:"id"`
	State      string     `json:"state"`
	TraceID    string     `json:"traceId,omitempty"`
	Error      string     `json:"error,omitempty"`
	EnqueuedAt time.Time  `json:"enqueuedAt"`
	StartedAt  *time.Time `json:"startedAt,omitempty"`
	FinishedAt *time.Time `json:"finishedAt,omitempty"`
}

type jobEvent struct {
	Type string  `json:"type"`
	Job  jobView `json:"job"`
}

// sample is one completed job's measurements.
type sample struct {
	jobID            string
	traceID          string  // the job's end-to-end trace (GET /v1/traces/{id})
	submitSeconds    float64 // successful POST /v1/jobs round-trip
	e2eSeconds       float64 // submit start -> terminal state observed
	queueWaitSeconds float64 // server-side StartedAt - EnqueuedAt
	hasQueueWait     bool
	failed           bool
}

// quantiles is the latency summary serialized per metric.
type quantiles struct {
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	Count int     `json:"count"`
}

// serveBench is the BENCH_serve.json record. Like BenchRecord
// (internal/experiments), wall-clock numbers track the reproduction's
// serving performance across PRs on the same host and scale.
type serveBench struct {
	Experiment       string    `json:"experiment"`
	GeneratedAt      string    `json:"generated_at"`
	Jobs             int       `json:"jobs"`
	Concurrency      int       `json:"concurrency"`
	Algorithm        string    `json:"algorithm"`
	GraphScale       int       `json:"graph_scale"`
	Machines         int       `json:"machines"`
	Engine           string    `json:"engine"`
	WallSeconds      float64   `json:"wall_seconds"`
	JobsPerSecond    float64   `json:"jobs_per_second"`
	Failed           int       `json:"failed"`
	Rejected429      int       `json:"rejected_429"`
	SubmitSeconds    quantiles `json:"submit_seconds"`
	E2ESeconds       quantiles `json:"e2e_seconds"`
	QueueWaitSeconds quantiles `json:"queue_wait_seconds"`
}

func main() {
	logger := cli.NewLogger("chaos-loadgen")
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "chaos-serve address (host:port or http:// URL)")
		jobs        = flag.Int("jobs", 50, "total jobs to run")
		concurrency = flag.Int("concurrency", 8, "concurrent submitters")
		alg         = flag.String("alg", "PR", "algorithm for every job")
		scale       = flag.Int("scale", 7, "R-MAT scale of the registered benchmark graph")
		machines    = flag.Int("machines", 2, "cluster size per job")
		engine      = flag.String("engine", "sim", "execution engine per job: sim or native")
		seedBase    = flag.Int64("seed-base", 10_000, "seed of job i is seed-base+i (distinct seeds defeat the result cache)")
		out         = flag.String("out", "BENCH_serve.json", "benchmark record path (empty disables)")
		jobTimeout  = flag.Duration("job-timeout", 2*time.Minute, "per-job budget from submit to terminal state")
	)
	flag.Parse()
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	if *jobs <= 0 || *concurrency <= 0 {
		cli.Fatal(logger, "bad flags", fmt.Errorf("-jobs and -concurrency must be positive (got %d, %d)", *jobs, *concurrency))
	}

	client := &http.Client{} // no global timeout: SSE streams are long-lived
	graphID, err := registerGraph(client, base, *scale)
	if err != nil {
		cli.Fatal(logger, "registering benchmark graph", err)
	}
	logger.Info("graph registered", "id", graphID, "scale", *scale)

	var (
		rejected atomic.Int64
		mu       sync.Mutex
		samples  []sample
	)
	idx := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				req := jobRequest{
					Graph:     graphID,
					Algorithm: *alg,
					Options:   jobOptions{Machines: *machines, Seed: *seedBase + int64(i), Engine: *engine},
				}
				tp, tid := traceparentFor(i)
				s := runJob(client, base, req, tp, tid, *jobTimeout, &rejected)
				if s.failed {
					logger.Error("job failed", "index", i, "job", s.jobID, "trace", s.traceID)
				}
				mu.Lock()
				samples = append(samples, s)
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < *jobs; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	wall := time.Since(start).Seconds()

	rec := summarize(samples, wall)
	rec.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	rec.Jobs, rec.Concurrency = *jobs, *concurrency
	rec.Algorithm, rec.GraphScale, rec.Machines, rec.Engine = *alg, *scale, *machines, *engine
	rec.Rejected429 = int(rejected.Load())

	fmt.Printf("jobs               %d (%d failed, %d rejected-then-retried)\n", rec.Jobs, rec.Failed, rec.Rejected429)
	fmt.Printf("wall clock         %.3fs (%.1f jobs/s)\n", rec.WallSeconds, rec.JobsPerSecond)
	fmt.Printf("submit latency     p50 %.4fs  p95 %.4fs  p99 %.4fs\n", rec.SubmitSeconds.P50, rec.SubmitSeconds.P95, rec.SubmitSeconds.P99)
	fmt.Printf("e2e job latency    p50 %.4fs  p95 %.4fs  p99 %.4fs\n", rec.E2ESeconds.P50, rec.E2ESeconds.P95, rec.E2ESeconds.P99)
	fmt.Printf("queue wait         p50 %.4fs  p95 %.4fs  p99 %.4fs\n", rec.QueueWaitSeconds.P50, rec.QueueWaitSeconds.P95, rec.QueueWaitSeconds.P99)
	printTraces(samples)

	if *out != "" {
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			cli.Fatal(logger, "encoding record", err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			cli.Fatal(logger, "writing record", err)
		}
		logger.Info("record written", "path", *out)
	}
	if rec.Failed > 0 {
		os.Exit(1)
	}
}

// registerGraph registers the shared benchmark graph and returns its id.
// A fixed generator seed keeps the graph identical across runs, so only
// the job seeds vary.
func registerGraph(client *http.Client, base string, scale int) (string, error) {
	body, _ := json.Marshal(graphSpec{Name: "loadgen", Type: "rmat", Scale: scale, Seed: 42})
	resp, err := client.Post(base+"/v1/graphs", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return "", fmt.Errorf("POST /v1/graphs: %s", resp.Status)
	}
	var g graphInfo
	if err := json.NewDecoder(resp.Body).Decode(&g); err != nil {
		return "", err
	}
	return g.ID, nil
}

// traceSeed distinguishes this loadgen process's traces; paired with
// the job index it derives one trace per job (see internal/obs: ids are
// derived, never random).
var traceSeed = fmt.Sprintf("chaos-loadgen/%d/%d", os.Getpid(), time.Now().UnixNano())

// traceparentFor mints the W3C traceparent for job i. The load
// generator is the trace's origin: the server adopts the trace id and
// parents its request span under the span id sent here, so the job's
// tree records the submission as a remote caller.
func traceparentFor(i int) (traceparent, traceID string) {
	t := obs.DeriveTraceID(traceSeed, uint64(i))
	s := obs.DeriveSpanID(t.String()+"/loadgen", uint64(i))
	return obs.Traceparent(t, s), t.String()
}

// runJob submits one job and drives it to a terminal state, measuring
// as it goes. Nothing here is fatal: every error path marks the sample
// failed so the run's record reflects it. The submission carries the
// given traceparent so the server stitches the job's trace to ours; the
// trace id rides the sample into the summary.
func runJob(client *http.Client, base string, req jobRequest, traceparent, traceID string, timeout time.Duration, rejected *atomic.Int64) sample {
	body, _ := json.Marshal(req)
	start := time.Now()
	deadline := start.Add(timeout)
	var jv jobView
	for {
		if time.Now().After(deadline) {
			return sample{traceID: traceID, failed: true}
		}
		postStart := time.Now()
		post, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return sample{traceID: traceID, failed: true}
		}
		post.Header.Set("Content-Type", "application/json")
		post.Header.Set("traceparent", traceparent)
		resp, err := client.Do(post)
		if err != nil {
			return sample{traceID: traceID, failed: true}
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			// Admission control: honor the backlog-derived Retry-After
			// (the service never answers 0; guard anyway).
			rejected.Add(1)
			wait, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
			resp.Body.Close()
			if wait <= 0 {
				wait = 1
			}
			time.Sleep(time.Duration(wait) * time.Second)
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			resp.Body.Close()
			return sample{traceID: traceID, failed: true}
		}
		err = json.NewDecoder(resp.Body).Decode(&jv)
		resp.Body.Close()
		if err != nil || jv.ID == "" {
			return sample{traceID: traceID, failed: true}
		}
		// Prefer the server's view of the trace id: it equals ours when
		// the traceparent was honored, and still identifies the job's
		// trace if the server ever declines to adopt it.
		if jv.TraceID != "" {
			traceID = jv.TraceID
		}
		s := sample{jobID: jv.ID, traceID: traceID, submitSeconds: time.Since(postStart).Seconds()}
		final, ok := follow(client, base, jv.ID, deadline)
		if !ok {
			s.failed = true
			return s
		}
		s.e2eSeconds = time.Since(start).Seconds()
		s.failed = final.State != "done"
		if final.StartedAt != nil {
			s.queueWaitSeconds = final.StartedAt.Sub(final.EnqueuedAt).Seconds()
			s.hasQueueWait = true
		}
		return s
	}
}

// follow watches the job over SSE until it reaches a terminal state; if
// the stream cannot be opened or breaks mid-flight (a dropped lagging
// subscriber, a draining server), it falls back to polling the job view.
func follow(client *http.Client, base, id string, deadline time.Time) (jobView, bool) {
	if jv, ok := followSSE(client, base, id, deadline); ok {
		return jv, true
	}
	return pollJob(client, base, id, deadline)
}

func terminal(state string) bool {
	return state == "done" || state == "failed" || state == "canceled"
}

func followSSE(client *http.Client, base, id string, deadline time.Time) (jobView, bool) {
	req, err := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return jobView{}, false
	}
	resp, err := client.Do(req)
	if err != nil {
		return jobView{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return jobView{}, false
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		if time.Now().After(deadline) {
			return jobView{}, false
		}
		line := sc.Text()
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue
		}
		var ev jobEvent
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			continue
		}
		if ev.Type == "state" && terminal(ev.Job.State) {
			return ev.Job, true
		}
	}
	return jobView{}, false // stream broke before a terminal event
}

func pollJob(client *http.Client, base, id string, deadline time.Time) (jobView, bool) {
	for !time.Now().After(deadline) {
		resp, err := client.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return jobView{}, false
		}
		var jv jobView
		err = json.NewDecoder(resp.Body).Decode(&jv)
		resp.Body.Close()
		if err == nil && terminal(jv.State) {
			return jv, true
		}
		time.Sleep(100 * time.Millisecond)
	}
	return jobView{}, false
}

// slowestTraces is how many of the slowest completed jobs get their
// trace ids printed, so the tail of the latency distribution is one
// `GET /v1/traces/{id}` away from a span-by-span explanation.
const slowestTraces = 5

// printTraces points the operator at the interesting traces: the
// slowest completed jobs (latency-tail forensics) and every failed job.
func printTraces(samples []sample) {
	var done, failed []sample
	for _, s := range samples {
		switch {
		case s.failed:
			failed = append(failed, s)
		case s.traceID != "":
			done = append(done, s)
		}
	}
	sort.Slice(done, func(i, j int) bool { return done[i].e2eSeconds > done[j].e2eSeconds })
	if len(done) > slowestTraces {
		done = done[:slowestTraces]
	}
	for _, s := range done {
		fmt.Printf("slowest            %s  e2e %.4fs  trace %s\n", s.jobID, s.e2eSeconds, s.traceID)
	}
	for _, s := range failed {
		id := s.jobID
		if id == "" {
			id = "(no job id)" // failed before the server answered
		}
		fmt.Printf("failed             %s  trace %s\n", id, s.traceID)
	}
}

// summarize folds the samples into the benchmark record. Failed jobs
// count toward Failed but contribute no latency samples — a timeout
// would otherwise read as a (huge) legitimate latency.
func summarize(samples []sample, wallSeconds float64) serveBench {
	rec := serveBench{Experiment: "serve", WallSeconds: wallSeconds}
	var submit, e2e, wait []float64
	completed := 0
	for _, s := range samples {
		if s.failed {
			rec.Failed++
			continue
		}
		completed++
		submit = append(submit, s.submitSeconds)
		e2e = append(e2e, s.e2eSeconds)
		if s.hasQueueWait {
			wait = append(wait, s.queueWaitSeconds)
		}
	}
	if wallSeconds > 0 {
		rec.JobsPerSecond = float64(completed) / wallSeconds
	}
	rec.SubmitSeconds = percentiles(submit)
	rec.E2ESeconds = percentiles(e2e)
	rec.QueueWaitSeconds = percentiles(wait)
	return rec
}

// percentiles computes the summary over a sample set using the
// nearest-rank method; an empty set yields all zeros.
func percentiles(v []float64) quantiles {
	if len(v) == 0 {
		return quantiles{}
	}
	sort.Float64s(v)
	rank := func(p float64) float64 {
		i := int(p*float64(len(v))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(v) {
			i = len(v) - 1
		}
		return v[i]
	}
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	return quantiles{
		P50:   rank(0.50),
		P95:   rank(0.95),
		P99:   rank(0.99),
		Max:   v[len(v)-1],
		Mean:  sum / float64(len(v)),
		Count: len(v),
	}
}
