// Package chaos is a Go reproduction of Chaos (Roy, Bindschaedler,
// Malicevic, Zwaenepoel — SOSP 2015): scale-out graph processing from
// secondary storage.
//
// Chaos extends X-Stream's streaming partitions to a cluster with three
// synergistic techniques: partitioning only for sequential storage access,
// uniformly random placement of all graph data with no attempt at locality,
// and randomized work stealing that lets several machines process one
// partition. This package exposes the ten evaluation algorithms over a
// deterministic simulation of the paper's rack (devices, NICs and latencies
// are modeled; graph data and algorithm execution are real). See DESIGN.md
// for the hardware substitution argument and EXPERIMENTS.md for the
// reproduced evaluation.
//
// Quick start:
//
//	edges := chaos.GenerateRMAT(16, false, 42)
//	ranks, report, err := chaos.RunPageRank(edges, 0, 5, chaos.Options{Machines: 8})
package chaos

import (
	"math"

	"chaos/internal/cluster"
	"chaos/internal/core"
	"chaos/internal/graph"
	"chaos/internal/metrics"
	"chaos/internal/rmat"
	"chaos/internal/webgraph"
)

// Edge is a directed edge with an optional weight.
type Edge = graph.Edge

// VertexID identifies a vertex; IDs are dense in [0, NumVertices).
type VertexID = graph.VertexID

// Storage selects the modeled storage device.
type Storage int

// Storage devices from the paper's testbed (§8).
const (
	// SSD models the 480 GB SSDs (400 MB/s).
	SSD Storage = iota
	// HDD models the 2x6 TB magnetic-disk RAID0 (200 MB/s).
	HDD
)

// Network selects the modeled interconnect.
type Network int

// Networks from the paper's evaluation.
const (
	// Net40GigE is the default 40 GigE top-of-rack switch.
	Net40GigE Network = iota
	// Net1GigE is the slow network of Figure 12, where the interconnect
	// becomes the bottleneck.
	Net1GigE
)

// Options configures a run. The zero value is a single 16-core machine
// with SSD storage and a 40 GigE network, the paper's defaults.
type Options struct {
	// Machines is the cluster size (default 1; the paper evaluates up
	// to 32).
	Machines int
	// Storage picks SSD (default) or HDD.
	Storage Storage
	// Network picks 40 GigE (default) or 1 GigE.
	Network Network
	// Cores per machine (default 16; Figure 10 sweeps 8..16).
	Cores int
	// ChunkBytes is the chunk size (default 4 MB, §7). Benches use
	// smaller chunks with lab-scale graphs.
	ChunkBytes int
	// VertexChunkBytes defaults to ChunkBytes.
	VertexChunkBytes int
	// MemBudgetBytes bounds one streaming partition's vertex set per
	// machine, determining the partition count (§3). Zero means
	// unconstrained (one partition per machine).
	MemBudgetBytes int64
	// MemoryBudgetMB bounds the native engine's resident update-set
	// memory, in MiB. Past the budget the update transport encodes
	// overflowing buckets and spills them to temp files, streaming them
	// back in deterministic fold order — the out-of-core execution the
	// paper runs from secondary storage. Zero means unlimited (the
	// zero-copy in-memory transport). The sim engine accepts and
	// ignores it: the DES models storage, so every sim run is
	// out-of-core by construction.
	MemoryBudgetMB int64
	// BatchK is the batch factor k of §6.5 (default 5).
	BatchK int
	// WindowOverride fixes the request window phi*k directly (Figure 16).
	WindowOverride int
	// Alpha biases the steal criterion (§10.2). Zero means the paper
	// default alpha = 1; set DisableStealing for alpha = 0 or
	// AlwaysSteal for alpha = infinity.
	Alpha float64
	// DisableStealing turns work stealing off entirely.
	DisableStealing bool
	// AlwaysSteal accepts every steal proposal with work remaining.
	AlwaysSteal bool
	// CheckpointEvery enables vertex-state checkpoints every n
	// iterations (§6.6).
	CheckpointEvery int
	// FailAtIteration injects a transient failure at the given 1-based
	// iteration (requires CheckpointEvery).
	FailAtIteration int
	// CentralDirectory enables the Figure 15 centralized-metadata
	// baseline instead of randomized placement.
	CentralDirectory bool
	// CombineUpdates applies Pregel-style update aggregation inside the
	// scatter buffers (§11.1) for algorithms that support it (BFS, WCC,
	// SSSP, PR). The paper found the merge cost outweighs the traffic
	// reduction; the ablation benchmark measures the trade.
	CombineUpdates bool
	// RewriteEdges enables the §6.1 extended model for algorithms that
	// rewrite their edge set during computation (MCST drops
	// intra-component edges, shrinking later rounds).
	RewriteEdges bool
	// ReplicateVertices mirrors every vertex chunk on a second storage
	// engine, the storage-failure tolerance sketched in §6.6.
	ReplicateVertices bool
	// MaxIterations caps the main loop.
	MaxIterations int
	// LatencyScale multiplies every fixed latency (device, network hop,
	// loopback). Laboratory runs that shrink ChunkBytes by some factor
	// should scale latencies by the same factor to preserve the paper's
	// latency-to-service-time ratios (see DESIGN.md). Zero means 1.
	LatencyScale float64
	// ComputeWorkers bounds the host worker pool that runs per-chunk
	// compute off the simulation thread (0 = GOMAXPROCS). Results,
	// reports and simulated times are bit-identical for every value —
	// the knob only trades host wall-clock time.
	ComputeWorkers int
	// Engine selects the execution plane: EngineSim (the default, also
	// "" or "des") runs the protocol under the deterministic
	// discrete-event simulation and reports virtual time; EngineNative
	// runs the same protocol as goroutine groups directly on the host —
	// results are identical up to floating-point fold order, the report
	// carries wall-clock instead of simulated seconds, and no
	// paper-facing performance claim is made (see DESIGN.md, "Two
	// planes, one protocol").
	Engine string
	// NativeBarrier restores the native engine's two-global-barriers-
	// per-iteration phase layout: every scatter finishes before any
	// gather starts. The default (false) streams the boundary — gathers
	// fold each source's update chunks as soon as that source's scatter
	// completes. Final values are bit-identical either way (the fold
	// order, not the phase order, is the determinism invariant; DESIGN.md
	// "Streaming the phase boundary"); only wall-clock and the
	// scheduling-dependent steal counters differ. The sim engine accepts
	// and ignores it: its simulated phases are barrier-ordered by
	// construction.
	NativeBarrier bool
	// Seed drives all randomized decisions; equal seeds reproduce runs
	// exactly.
	Seed int64
}

// Engine names accepted by Options.Engine (see ParseEngine).
const (
	// EngineSim is the discrete-event-simulation driver (internal/core):
	// virtual time, modeled hardware, the paper's evaluation plane.
	EngineSim = "sim"
	// EngineNative is the host-speed driver (internal/core/native):
	// goroutine groups, real chunks, wall-clock only.
	EngineNative = "native"
)

// spec builds the cluster hardware description.
func (o Options) spec() cluster.Spec {
	m := o.Machines
	if m <= 0 {
		m = 1
	}
	var s cluster.Spec
	if o.Storage == HDD {
		s = cluster.HDD(m)
	} else {
		s = cluster.SSD(m)
	}
	if o.Network == Net1GigE {
		s = cluster.GigE1(s)
	}
	if o.Cores > 0 {
		s = cluster.WithCores(s, o.Cores)
	}
	if o.LatencyScale > 0 && o.LatencyScale != 1 {
		s = cluster.ScaleLatencies(s, o.LatencyScale)
	}
	return s
}

// config translates Options into the engine configuration.
func (o Options) config() core.Config {
	cfg := core.DefaultConfig(o.spec())
	if o.ChunkBytes > 0 {
		cfg.ChunkBytes = o.ChunkBytes
	}
	if o.VertexChunkBytes > 0 {
		cfg.VertexChunkBytes = o.VertexChunkBytes
	}
	if o.MemBudgetBytes > 0 {
		cfg.MemBudget = o.MemBudgetBytes
	}
	if o.MemoryBudgetMB > 0 {
		cfg.TransportBudgetBytes = o.MemoryBudgetMB << 20
	}
	if o.BatchK > 0 {
		cfg.BatchK = o.BatchK
	}
	cfg.WindowOverride = o.WindowOverride
	switch {
	case o.DisableStealing:
		cfg.Alpha = 0
	case o.AlwaysSteal:
		cfg.Alpha = math.Inf(1)
	case o.Alpha > 0:
		cfg.Alpha = o.Alpha
	}
	cfg.CheckpointEvery = o.CheckpointEvery
	cfg.FailAtIteration = o.FailAtIteration
	cfg.CentralDirectory = o.CentralDirectory
	cfg.CombineUpdates = o.CombineUpdates
	cfg.RewriteEdges = o.RewriteEdges
	cfg.ReplicateVertices = o.ReplicateVertices
	cfg.PhaseBarrier = o.NativeBarrier
	if o.MaxIterations > 0 {
		cfg.MaxIterations = o.MaxIterations
	}
	if o.ComputeWorkers > 0 {
		cfg.ComputeWorkers = o.ComputeWorkers
	}
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	return cfg
}

// Report summarizes a run: simulated wall-clock (including pre-processing,
// as in the paper), I/O volumes and the Figure 17 breakdown.
//
// Engine records which driver executed the run. For EngineSim the
// *Seconds fields are virtual time and WallSeconds is zero (wall-clock
// varies run to run, and sim reports are bit-reproducible). For
// EngineNative there is no virtual clock: SimulatedSeconds and
// PreprocessSeconds are zero, WallSeconds is the host wall-clock of the
// whole run, and AggregateBandwidth is bytes moved per wall second.
type Report struct {
	Algorithm         string
	Machines          int
	Engine            string
	SimulatedSeconds  float64
	PreprocessSeconds float64
	// WallSeconds is the host wall-clock of a native run (zero under
	// the DES driver, whose reports must stay bit-reproducible).
	WallSeconds  float64
	Iterations   int
	BytesRead    int64
	BytesWritten int64
	// AggregateBandwidth is device bytes moved per simulated second
	// (Figure 14).
	AggregateBandwidth float64
	// DeviceUtilization is the mean storage-device utilization.
	DeviceUtilization float64
	StealsAccepted    int
	StealsRejected    int
	// Breakdown maps Figure 17 categories to runtime fractions.
	Breakdown map[string]float64
	// RebalanceSeconds is the worst-case per-machine dynamic load
	// balancing cost (Figure 20 numerator).
	RebalanceSeconds float64
	CheckpointBytes  int64
	Recoveries       int
	// SpillBytes / SpillFiles report the native engine's out-of-core
	// update traffic under Options.MemoryBudgetMB: encoded bytes
	// written to spill files and spill files created. Zero when the
	// budget is unlimited and always zero for the sim engine.
	SpillBytes int64
	SpillFiles int
}

func reportFrom(run *metrics.Run, machines int) *Report {
	r := &Report{
		Algorithm:          run.Algorithm,
		Machines:           machines,
		Engine:             EngineSim,
		SimulatedSeconds:   run.Runtime.Seconds(),
		PreprocessSeconds:  run.Preprocess.Seconds(),
		Iterations:         run.Iterations,
		BytesRead:          run.BytesRead,
		BytesWritten:       run.BytesWritten,
		AggregateBandwidth: run.AggregateBandwidth(),
		DeviceUtilization:  run.DeviceUtilization,
		StealsAccepted:     run.StealsAccepted,
		StealsRejected:     run.StealsRejected,
		Breakdown:          make(map[string]float64),
		RebalanceSeconds:   run.RebalanceTime().Seconds(),
		CheckpointBytes:    run.CheckpointBytes,
		Recoveries:         run.Recoveries,
		SpillBytes:         run.SpillBytes,
		SpillFiles:         run.SpillFiles,
	}
	for _, c := range metrics.Categories() {
		r.Breakdown[c.String()] = run.Fraction(c)
	}
	return r
}

// nativeReportFrom shapes a native run's metrics: the driver stores host
// wall-clock in the Run's time fields, so they move to WallSeconds and
// the virtual-time fields stay zero — a native report never claims
// simulated seconds (EXPERIMENTS.md keeps the figures DES-only).
func nativeReportFrom(run *metrics.Run, machines int) *Report {
	r := reportFrom(run, machines)
	r.Engine = EngineNative
	r.WallSeconds = run.Runtime.Seconds()
	r.SimulatedSeconds = 0
	r.PreprocessSeconds = 0
	return r
}

// GenerateRMAT produces a scale-n R-MAT graph (2^n vertices, 2^(n+4)
// edges), the synthetic workload of the evaluation (§8).
func GenerateRMAT(scale int, weighted bool, seed int64) []Edge {
	g := rmat.New(scale, seed)
	g.Weighted = weighted
	return g.Generate()
}

// GenerateWebGraph produces a synthetic hyperlink graph with Data-Commons-
// like skew (the paper's real-world workload stand-in; see DESIGN.md).
func GenerateWebGraph(pages uint64, seed int64) []Edge {
	return webgraph.New(pages, seed).Generate()
}

// Undirected returns edges plus their reverses, the conversion §8 applies
// for the undirected algorithms (BFS, WCC, MCST, MIS, SSSP).
func Undirected(edges []Edge) []Edge { return graph.Undirected(edges) }

// NumVertices returns one past the largest vertex ID in edges.
func NumVertices(edges []Edge) uint64 { return graph.MaxVertex(edges) }

// TheoreticalUtilization returns rho(m, k) = 1 - (1 - k/m)^m, the storage
// utilization bound of Equation 4 plotted in Figure 5.
func TheoreticalUtilization(machines int, batchK float64) float64 {
	return core.Utilization(machines, batchK)
}

// UtilizationFloor returns the asymptotic bound 1 - e^-k of Equation 5.
func UtilizationFloor(batchK float64) float64 { return core.UtilizationFloor(batchK) }
