package chaos

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseAlgorithm(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"PR", "PR"}, {"pr", "PR"}, {"pagerank", "PR"},
		{"bfs", "BFS"}, {"Sssp", "SSSP"}, {"cond", "Cond"},
		{"conductance", "Cond"}, {"spmv", "SpMV"}, {"bp", "BP"},
	}
	for _, c := range cases {
		got, err := ParseAlgorithm(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseAlgorithm(%q) = %q, %v; want %q", c.in, got, err, c.want)
		}
	}
	if _, err := ParseAlgorithm("dijkstra"); err == nil || !strings.Contains(err.Error(), "unknown algorithm") {
		t.Errorf("ParseAlgorithm(dijkstra) err = %v, want unknown-algorithm error", err)
	}
}

func TestParseStorageAndNetwork(t *testing.T) {
	if s, err := ParseStorage(""); err != nil || s != SSD {
		t.Errorf("ParseStorage(\"\") = %v, %v", s, err)
	}
	if s, err := ParseStorage("HDD"); err != nil || s != HDD {
		t.Errorf("ParseStorage(HDD) = %v, %v", s, err)
	}
	if _, err := ParseStorage("tape"); err == nil {
		t.Error("ParseStorage(tape) should error")
	}
	if n, err := ParseNetwork("1g"); err != nil || n != Net1GigE {
		t.Errorf("ParseNetwork(1g) = %v, %v", n, err)
	}
	if n, err := ParseNetwork("40gige"); err != nil || n != Net40GigE {
		t.Errorf("ParseNetwork(40gige) = %v, %v", n, err)
	}
	if _, err := ParseNetwork("10g"); err == nil {
		t.Error("ParseNetwork(10g) should error")
	}
}

func TestParseOptionsAppliesHardware(t *testing.T) {
	alg, opt, err := ParseOptions("pagerank", "hdd", "1g", Options{Machines: 4})
	if err != nil {
		t.Fatal(err)
	}
	if alg != "PR" || opt.Storage != HDD || opt.Network != Net1GigE || opt.Machines != 4 {
		t.Errorf("got %q %+v", alg, opt)
	}
	// Empty algorithm is allowed (hardware-only callers).
	if _, _, err := ParseOptions("", "", "", Options{}); err != nil {
		t.Errorf("empty spec should parse: %v", err)
	}
	if _, _, err := ParseOptions("PR", "floppy", "", Options{}); err == nil {
		t.Error("bad storage should error")
	}
	if _, _, err := ParseOptions("nope", "", "", Options{}); err == nil {
		t.Error("bad algorithm should error")
	}
}

func TestCanonicalMakesDefaultsExplicit(t *testing.T) {
	zero := Options{}.Canonical()
	explicit := Options{
		Machines: 1, Cores: 16, ChunkBytes: 4 << 20, VertexChunkBytes: 4 << 20,
		BatchK: 5, Alpha: 1, MaxIterations: 1000, LatencyScale: 1, Seed: 1,
	}.Canonical()
	if !reflect.DeepEqual(zero, explicit) {
		t.Errorf("zero canonical %+v != explicit defaults %+v", zero, explicit)
	}
	if zero.Fingerprint() != explicit.Fingerprint() {
		t.Error("fingerprints of equivalent options differ")
	}
	if (Options{}).Fingerprint() == (Options{Machines: 2}).Fingerprint() {
		t.Error("distinct configurations share a fingerprint")
	}
}

// TestFingerprintCoversAllFields reflects over Options and checks that
// the explicit field-by-field Fingerprint encoder covers exactly the
// struct's fields: adding an Options field without teaching Fingerprint
// about it must fail this test, not silently fall out of the cache key.
func TestFingerprintCoversAllFields(t *testing.T) {
	typ := reflect.TypeOf(Options{})
	covered := make(map[string]bool, len(fingerprintFields))
	for _, name := range fingerprintFields {
		if covered[name] {
			t.Errorf("fingerprintFields lists %s twice", name)
		}
		covered[name] = true
		if _, ok := typ.FieldByName(name); !ok {
			t.Errorf("fingerprintFields lists %s, which Options does not have", name)
		}
	}
	for i := 0; i < typ.NumField(); i++ {
		if name := typ.Field(i).Name; !covered[name] {
			t.Errorf("Options.%s is not covered by Fingerprint; extend fingerprintFields and the encoder", name)
		}
	}
	if len(fingerprintFields) != strings.Count(Options{}.Fingerprint(), ";") {
		t.Errorf("encoder emits %d components, fingerprintFields lists %d",
			strings.Count(Options{}.Fingerprint(), ";"), len(fingerprintFields))
	}
}

// TestFingerprintSensitivity flips every canonical-visible field away
// from its default and checks the fingerprint moves (and that the
// erased-by-canonicalization knobs don't).
func TestFingerprintSensitivity(t *testing.T) {
	base := Options{}.Fingerprint()
	cases := map[string]Options{
		"Machines":          {Machines: 3},
		"Storage":           {Storage: HDD},
		"Network":           {Network: Net1GigE},
		"Cores":             {Cores: 8},
		"ChunkBytes":        {ChunkBytes: 1 << 10},
		"VertexChunkBytes":  {VertexChunkBytes: 1 << 9},
		"MemBudgetBytes":    {MemBudgetBytes: 1 << 20},
		"BatchK":            {BatchK: 7},
		"WindowOverride":    {WindowOverride: 9},
		"Alpha":             {Alpha: 2.5},
		"DisableStealing":   {DisableStealing: true},
		"AlwaysSteal":       {AlwaysSteal: true},
		"CheckpointEvery":   {CheckpointEvery: 2},
		"FailAtIteration":   {FailAtIteration: 3, CheckpointEvery: 1},
		"CentralDirectory":  {CentralDirectory: true},
		"CombineUpdates":    {CombineUpdates: true},
		"RewriteEdges":      {RewriteEdges: true},
		"ReplicateVertices": {ReplicateVertices: true},
		"MaxIterations":     {MaxIterations: 42},
		"LatencyScale":      {LatencyScale: 0.25},
		"Seed":              {Seed: 99},
	}
	for field, opt := range cases {
		if opt.Fingerprint() == base {
			t.Errorf("changing %s does not change the fingerprint", field)
		}
	}
	// ComputeWorkers only trades wall-clock time; runs are bit-identical,
	// so it canonicalizes away and shares the cache entry.
	if (Options{ComputeWorkers: 4}).Fingerprint() != base {
		t.Error("ComputeWorkers should canonicalize away from the fingerprint")
	}
}

func TestCanonicalFoldsStealingKnobs(t *testing.T) {
	disabled := Options{DisableStealing: true, AlwaysSteal: true, Alpha: 3}.Canonical()
	if !disabled.DisableStealing || disabled.AlwaysSteal || disabled.Alpha != 0 {
		t.Errorf("DisableStealing canonical = %+v", disabled)
	}
	always := Options{AlwaysSteal: true, Alpha: 3}.Canonical()
	if !always.AlwaysSteal || always.Alpha != 0 {
		t.Errorf("AlwaysSteal canonical = %+v", always)
	}
	if (Options{}).Canonical().Alpha != 1 {
		t.Error("default alpha should canonicalize to 1")
	}
}

// TestCanonicalRunEquivalence checks the contract that running the
// canonical form behaves exactly like running the original options.
// Each case leaves most fields zero so that a drift between Canonical's
// explicit values and the engine defaults (cluster.SSD,
// core.DefaultConfig, Config.normalize) shows up as diverging reports.
func TestCanonicalRunEquivalence(t *testing.T) {
	edges := GenerateRMAT(6, false, 42)
	lab := Options{ChunkBytes: 1 << 10, LatencyScale: 1.0 / 4096}
	cases := map[string]Options{
		"zero-heavy":  {Machines: 2, ChunkBytes: 1 << 10, LatencyScale: 1.0 / 4096, Seed: 7},
		"defaults":    {},
		"hdd-1g":      {Storage: HDD, Network: Net1GigE, ChunkBytes: lab.ChunkBytes, LatencyScale: lab.LatencyScale},
		"no-stealing": {DisableStealing: true, Machines: 2, ChunkBytes: lab.ChunkBytes, LatencyScale: lab.LatencyScale},
		"always":      {AlwaysSteal: true, Machines: 2, ChunkBytes: lab.ChunkBytes, LatencyScale: lab.LatencyScale},
		"checkpoint":  {CheckpointEvery: 2, Machines: 2, ChunkBytes: lab.ChunkBytes, LatencyScale: lab.LatencyScale},
	}
	for name, opt := range cases {
		rep1, err := RunByName("PR", edges, 1<<6, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rep2, err := RunByName("PR", edges, 1<<6, opt.Canonical())
		if err != nil {
			t.Fatalf("%s canonical: %v", name, err)
		}
		if !reflect.DeepEqual(rep1, rep2) {
			t.Errorf("%s: canonical run diverged:\n%+v\n%+v", name, rep1, rep2)
		}
	}
}

func TestViewForAndApply(t *testing.T) {
	edges := GenerateRMAT(5, false, 1)
	for _, alg := range Algorithms() {
		v, err := ViewFor(alg)
		if err != nil {
			t.Fatalf("ViewFor(%s): %v", alg, err)
		}
		switch alg {
		case "BFS", "WCC", "MCST", "MIS", "SSSP":
			if v != ViewUndirected {
				t.Errorf("ViewFor(%s) = %v, want undirected", alg, v)
			}
		case "SCC":
			if v != ViewAugmented {
				t.Errorf("ViewFor(%s) = %v, want augmented", alg, v)
			}
		default:
			if v != ViewDirected {
				t.Errorf("ViewFor(%s) = %v, want directed", alg, v)
			}
		}
	}
	if _, err := ViewFor("nope"); err == nil {
		t.Error("ViewFor(nope) should error")
	}
	// Every non-loop edge gains a reverse; self-loops are emitted once.
	loops := 0
	for _, e := range edges {
		if e.Src == e.Dst {
			loops++
		}
	}
	if got := ViewUndirected.Apply(edges); len(got) != 2*len(edges)-loops {
		t.Errorf("undirected view has %d edges, want %d", len(got), 2*len(edges)-loops)
	}
	if got := ViewDirected.Apply(edges); len(got) != len(edges) {
		t.Error("directed view must be the identity")
	}
}

// TestRunPreparedMatchesRunByName checks that dispatching through a
// pre-applied view (the job-service path) reproduces RunByName exactly.
func TestRunPreparedMatchesRunByName(t *testing.T) {
	opt := Options{ChunkBytes: 1 << 10, LatencyScale: 1.0 / 4096, Seed: 3}
	for _, alg := range []string{"BFS", "PR", "SCC"} {
		edges := GenerateRMAT(5, NeedsWeights(alg), 42)
		res1, rep1, err := RunByNameResult(alg, edges, 1<<5, opt)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		view, _ := ViewFor(alg)
		res2, rep2, err := RunPrepared(alg, view.Apply(edges), 1<<5, opt)
		if err != nil {
			t.Fatalf("%s prepared: %v", alg, err)
		}
		if !reflect.DeepEqual(res1, res2) || !reflect.DeepEqual(rep1, rep2) {
			t.Errorf("%s: prepared run diverged from RunByName", alg)
		}
	}
}

func TestRunByNameResultSummaries(t *testing.T) {
	opt := Options{ChunkBytes: 1 << 10, LatencyScale: 1.0 / 4096, Seed: 3}
	edges := GenerateRMAT(5, false, 42)
	res, _, err := RunByNameResult("BFS", edges, 1<<5, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "BFS" || res.Vertices != 1<<5 {
		t.Errorf("result header %+v", res)
	}
	if res.Summary["reachable"] < 1 || res.Summary["reachable"] > 1<<5 {
		t.Errorf("implausible reachable count %v", res.Summary["reachable"])
	}
	levels, _, err := RunBFS(edges, 1<<5, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	reachable := 0
	for _, l := range levels {
		if l != ^uint32(0) {
			reachable++
		}
	}
	if float64(reachable) != res.Summary["reachable"] {
		t.Errorf("summary reachable %v != recomputed %d", res.Summary["reachable"], reachable)
	}

	// n = 0 means "infer": every algorithm, including the scalar-valued
	// Cond, must still report the inferred vertex count (one past the
	// largest vertex ID present), not 0.
	cond, _, err := RunByNameResult("Cond", edges, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	if want := int(NumVertices(edges)); cond.Vertices != want || cond.Vertices == 0 {
		t.Errorf("Cond with inferred n: Vertices = %d, want %d", cond.Vertices, want)
	}
}
