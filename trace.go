package chaos

import (
	"context"
	"io"

	"chaos/internal/core/drive"
	"chaos/internal/obs"
)

// TraceSpan is one flight-recorder record: a unit of per-machine work
// (preprocess, scatter/gather/apply of one partition, a steal sweep)
// with its time range and byte/chunk/steal tallies. Start and Dur are
// nanoseconds — virtual time under the DES engine, host wall-clock
// since run start under the native engine. Like Progress, the stream
// is guaranteed observational-only: subscribing leaves results,
// reports and the virtual clock bit-identical (TestTraceDeterminism).
type TraceSpan = drive.Span

// Phase labels of TraceSpan.Phase.
const (
	PhasePreprocess = drive.PhasePreprocess
	PhaseScatter    = drive.PhaseScatter
	PhaseGather     = drive.PhaseGather
	PhaseApply      = drive.PhaseApply
	PhaseSteal      = drive.PhaseSteal
	PhaseSpill      = drive.PhaseSpill
)

// traceKey carries the subscriber through a context, mirroring
// progressKey; the engine-side wiring happens in runProgram.
type traceKey struct{}

// WithTrace returns a context that subscribes fn to the flight-recorder
// span stream of any run started under it. Under the DES engine fn runs
// on the simulation goroutine; under the native engine it is invoked
// concurrently from machine goroutines, so fn must be safe for
// concurrent use (TraceRecorder.Record is). Keep it cheap: a slow
// callback stalls host wall-clock, never simulated time or results.
func WithTrace(ctx context.Context, fn func(TraceSpan)) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, traceKey{}, fn)
}

// traceFrom extracts the subscriber WithTrace installed, nil if none.
func traceFrom(ctx context.Context) func(TraceSpan) {
	if ctx == nil {
		return nil
	}
	fn, _ := ctx.Value(traceKey{}).(func(TraceSpan))
	return fn
}

// spillDirKey carries the native spill parent directory through a
// context, mirroring traceKey.
type spillDirKey struct{}

// WithSpillDir returns a context under which native runs with an
// Options.MemoryBudgetMB place their spill files in a run-private temp
// directory created under dir instead of the OS temp dir. The job
// service points this at a directory it can sweep for orphans on
// restart. Purely operational: the directory never affects results and
// is absent from option fingerprints.
func WithSpillDir(ctx context.Context, dir string) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, spillDirKey{}, dir)
}

// spillDirFrom extracts the directory WithSpillDir installed, "" if none.
func spillDirFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	dir, _ := ctx.Value(spillDirKey{}).(string)
	return dir
}

// TraceRecorder collects a run's span stream into a bounded ring,
// dropping the oldest spans on overflow so recording never blocks or
// grows without bound. Safe for concurrent use; one recorder should
// observe one run (spans carry no run ID).
type TraceRecorder struct {
	ring *obs.Ring[drive.Span]
}

// NewTraceRecorder returns a recorder retaining at most capacity spans
// (a non-positive capacity is bumped to 1).
func NewTraceRecorder(capacity int) *TraceRecorder {
	return &TraceRecorder{ring: obs.NewRing[drive.Span](capacity)}
}

// Record is the WithTrace subscriber: pass it as the callback.
func (t *TraceRecorder) Record(s TraceSpan) { t.ring.Record(s) }

// Spans returns the retained spans oldest-first plus the count dropped
// to overflow.
func (t *TraceRecorder) Spans() ([]TraceSpan, uint64) { return t.ring.Snapshot() }

// Dropped returns the overflow count alone.
func (t *TraceRecorder) Dropped() uint64 { return t.ring.Dropped() }

// WriteChromeTrace emits the retained spans as Chrome trace_event JSON
// ({"traceEvents": [...]}) loadable in about:tracing or Perfetto.
func (t *TraceRecorder) WriteChromeTrace(w io.Writer) error {
	spans, _ := t.ring.Snapshot()
	return obs.WriteChromeTrace(w, spans)
}
